"""Campaign manifests: declarative descriptions of many-simulation runs.

A manifest is a TOML or JSON document declaring a campaign as a list of
jobs, each naming an experiment plus overrides::

    name = "hct-sweep"
    max_parallel = 2

    [defaults]
    backend = "processes"
    workers = 2
    max_attempts = 3
    checkpoint_every = 20

    [[jobs]]
    id = "tube-ht20"
    experiment = "tube_window"
    steps = 120
    priority = 10
    [jobs.params]
    hematocrit = 0.20

    [[jobs]]
    id = "shear-l05-n2"
    experiment = "shear_layers"
    steps = 400
    [jobs.params]
    lam = 0.5
    ratio = 2            # note: passed through verbatim — must be a
                         # parameter the experiment accepts ("n" here)

Fields in ``[defaults]`` apply to every job that does not set them
itself.  ``load_manifest`` validates the document eagerly (unknown
experiments, duplicate or unsafe job ids, bad counts) so a typo fails at
admission rather than forty minutes into a sweep.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .registry import resolve
from .util import atomic_write_json, read_json

#: Job fields ``[defaults]`` may set.
_DEFAULTABLE = (
    "backend",
    "workers",
    "max_attempts",
    "timeout_s",
    "checkpoint_every",
    "priority",
    "isolation",
)

_ISOLATION_MODES = ("process", "inline")


@dataclass
class JobSpec:
    """One schedulable simulation inside a campaign."""

    job_id: str
    experiment: str
    params: dict = field(default_factory=dict)
    #: Step budget mapped onto the experiment's steps parameter
    #: (``steps_per_stop`` for the upper-body sweep, ``steps`` elsewhere).
    steps: int | None = None
    backend: str | None = None  # REPRO_PARALLEL_BACKEND for this job
    workers: int | None = None  # REPRO_PARALLEL_WORKERS for this job
    priority: int = 0  # higher runs earlier
    max_attempts: int = 2
    timeout_s: float | None = None  # wall-clock kill per attempt
    checkpoint_every: int = 0  # steps between checkpoint shards
    seed: int | None = None  # explicit RNG seed (default: derived per job)
    isolation: str = "process"  # "process" (subprocess) or "inline"

    def validate(self) -> None:
        if not self.job_id or not all(
            ch.isalnum() or ch in "._-" for ch in self.job_id
        ):
            raise ValueError(
                f"job id {self.job_id!r} must be non-empty and use only "
                "[A-Za-z0-9._-] (it becomes a directory name)"
            )
        resolve(self.experiment)  # raises on unknown names
        if not isinstance(self.params, dict):
            raise ValueError(f"job {self.job_id}: params must be a table/dict")
        if self.max_attempts < 1:
            raise ValueError(f"job {self.job_id}: max_attempts must be >= 1")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError(f"job {self.job_id}: timeout_s must be > 0")
        if self.checkpoint_every < 0:
            raise ValueError(f"job {self.job_id}: checkpoint_every must be >= 0")
        if self.steps is not None and self.steps < 1:
            raise ValueError(f"job {self.job_id}: steps must be >= 1")
        if self.isolation not in _ISOLATION_MODES:
            raise ValueError(
                f"job {self.job_id}: isolation must be one of "
                f"{_ISOLATION_MODES}"
            )


@dataclass
class CampaignManifest:
    """A named list of jobs plus campaign-wide scheduling knobs."""

    name: str
    jobs: list[JobSpec]
    max_parallel: int = 2
    #: First retry waits this long; subsequent retries double it
    #: (capped by the scheduler).
    retry_backoff_s: float = 0.5

    def validate(self) -> None:
        if not self.name:
            raise ValueError("campaign name must be non-empty")
        if self.max_parallel < 1:
            raise ValueError("max_parallel must be >= 1")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        if not self.jobs:
            raise ValueError("campaign has no jobs")
        seen: set[str] = set()
        for job in self.jobs:
            job.validate()
            if job.job_id in seen:
                raise ValueError(f"duplicate job id {job.job_id!r}")
            seen.add(job.job_id)

    def job(self, job_id: str) -> JobSpec:
        for j in self.jobs:
            if j.job_id == job_id:
                return j
        raise KeyError(job_id)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "max_parallel": self.max_parallel,
            "retry_backoff_s": self.retry_backoff_s,
            "jobs": [asdict(j) for j in self.jobs],
        }

    def save(self, path: str | Path) -> Path:
        """Persist the normalized manifest (JSON, atomic)."""
        return atomic_write_json(path, self.to_dict())


def manifest_from_dict(doc: dict) -> CampaignManifest:
    """Build and validate a manifest from a parsed TOML/JSON document."""
    if not isinstance(doc, dict):
        raise ValueError("manifest root must be a table/object")
    defaults = doc.get("defaults", {})
    unknown_defaults = set(defaults) - set(_DEFAULTABLE)
    if unknown_defaults:
        raise ValueError(
            f"unknown [defaults] key(s) {sorted(unknown_defaults)}; "
            f"allowed: {sorted(_DEFAULTABLE)}"
        )
    jobs: list[JobSpec] = []
    for i, j in enumerate(doc.get("jobs", [])):
        if not isinstance(j, dict):
            raise ValueError(f"jobs[{i}] must be a table/object")
        j = dict(j)
        job_id = j.pop("id", j.pop("job_id", None))
        experiment = j.pop("experiment", None)
        if job_id is None or experiment is None:
            raise ValueError(f"jobs[{i}]: 'id' and 'experiment' are required")
        merged = {**{k: v for k, v in defaults.items()}, **j}
        known = {f for f in JobSpec.__dataclass_fields__ if f != "job_id"}
        unknown = set(merged) - known
        if unknown:
            raise ValueError(
                f"job {job_id}: unknown key(s) {sorted(unknown)}; "
                f"allowed: {sorted(known)}"
            )
        jobs.append(JobSpec(job_id=str(job_id), experiment=str(experiment),
                            **merged))
    manifest = CampaignManifest(
        name=str(doc.get("name", "campaign")),
        jobs=jobs,
        max_parallel=int(doc.get("max_parallel", 2)),
        retry_backoff_s=float(doc.get("retry_backoff_s", 0.5)),
    )
    manifest.validate()
    return manifest


def load_manifest(path: str | Path) -> CampaignManifest:
    """Parse a ``.toml`` or ``.json`` manifest file."""
    path = Path(path)
    if path.suffix.lower() == ".toml":
        import tomllib

        with open(path, "rb") as fh:
            doc = tomllib.load(fh)
    else:
        doc = read_json(path)
    try:
        return manifest_from_dict(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None
