"""Short-range intercellular contact forces.

Deformable-cell suspensions need a sub-grid repulsion to keep membranes
from interpenetrating where the IBM velocity field cannot resolve the
lubrication layer (standard practice in HARVEY-family FSI codes).  A
linear soft repulsion acts between vertex pairs of *different* cells
closer than a cutoff:

    F(r) = k_c (1 - r/r_c) r_hat      for r < r_c

Pairs are found with a cKDTree over the pooled vertex array (C-speed;
functionally equivalent to the uniform subgrid used for the rarer
overlap-removal events).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

# Reference kernel body lives in the registry's numpy backend (definition
# site chosen to keep ``repro.kernels`` import-cycle-free); re-exported
# here because this module is its natural API home.
from ..kernels.numpy_backend import contact_scatter  # noqa: F401

#: Reusable scratch arrays, keyed by role; the vertex count is stable
#: between membership changes, so the per-step hot path reallocates
#: nothing.  Callers fold the returned forces into their own accumulator
#: and never retain the buffer, which makes cross-call reuse safe.
_scratch: dict[str, np.ndarray] = {}


def _scratch_buf(key: str, shape: tuple, dtype=np.float64) -> np.ndarray:
    buf = _scratch.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = _scratch[key] = np.empty(shape, dtype=dtype)
    return buf


def contact_forces(
    vertices: np.ndarray,
    cell_index: np.ndarray,
    cutoff: float,
    stiffness: float,
    table: dict | None = None,
) -> np.ndarray:
    """Pairwise repulsive forces between vertices of different cells.

    Parameters
    ----------
    vertices:
        All cell vertices stacked, shape (N, 3) [m].
    cell_index:
        Owning cell ordinal per vertex, shape (N,).
    cutoff:
        Interaction range r_c [m].
    stiffness:
        Peak force k_c at contact [N].
    table:
        Optional resolved kernel table (``repro.kernels.get_kernel_table``);
        its ``contact_scatter`` entry replaces the reference pair-force
        compute + scatter.

    Returns
    -------
    (N, 3) forces; equal and opposite within each pair (momentum-free).
    """
    n = len(vertices)
    forces = _scratch_buf("forces", (n, 3))
    forces.fill(0.0)
    if n == 0 or cutoff <= 0.0:
        return forces
    tree = cKDTree(vertices)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if len(pairs) == 0:
        return forces
    i, j = pairs[:, 0], pairs[:, 1]
    inter = cell_index[i] != cell_index[j]
    i, j = i[inter], j[inter]
    if len(i) == 0:
        return forces
    scatter = table["contact_scatter"] if table is not None else contact_scatter
    scatter(vertices, i, j, cutoff, stiffness, forces)
    return forces
