"""Short-range intercellular contact forces.

Deformable-cell suspensions need a sub-grid repulsion to keep membranes
from interpenetrating where the IBM velocity field cannot resolve the
lubrication layer (standard practice in HARVEY-family FSI codes).  A
linear soft repulsion acts between vertex pairs of *different* cells
closer than a cutoff:

    F(r) = k_c (1 - r/r_c) r_hat      for r < r_c

Pairs are found with a cKDTree over the pooled vertex array (C-speed;
functionally equivalent to the uniform subgrid used for the rarer
overlap-removal events).
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

#: Reusable scratch arrays, keyed by role; the vertex count is stable
#: between membership changes, so the per-step hot path reallocates
#: nothing.  Callers fold the returned forces into their own accumulator
#: and never retain the buffer, which makes cross-call reuse safe.
_scratch: dict[str, np.ndarray] = {}


def _scratch_buf(key: str, shape: tuple, dtype=np.float64) -> np.ndarray:
    buf = _scratch.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = _scratch[key] = np.empty(shape, dtype=dtype)
    return buf


def contact_forces(
    vertices: np.ndarray,
    cell_index: np.ndarray,
    cutoff: float,
    stiffness: float,
) -> np.ndarray:
    """Pairwise repulsive forces between vertices of different cells.

    Parameters
    ----------
    vertices:
        All cell vertices stacked, shape (N, 3) [m].
    cell_index:
        Owning cell ordinal per vertex, shape (N,).
    cutoff:
        Interaction range r_c [m].
    stiffness:
        Peak force k_c at contact [N].

    Returns
    -------
    (N, 3) forces; equal and opposite within each pair (momentum-free).
    """
    n = len(vertices)
    forces = _scratch_buf("forces", (n, 3))
    forces.fill(0.0)
    if n == 0 or cutoff <= 0.0:
        return forces
    tree = cKDTree(vertices)
    pairs = tree.query_pairs(cutoff, output_type="ndarray")
    if len(pairs) == 0:
        return forces
    i, j = pairs[:, 0], pairs[:, 1]
    inter = cell_index[i] != cell_index[j]
    i, j = i[inter], j[inter]
    if len(i) == 0:
        return forces
    d = vertices[i] - vertices[j]
    r = np.linalg.norm(d, axis=1)
    r = np.maximum(r, 1e-12 * cutoff)
    mag = stiffness * (1.0 - r / cutoff)
    fij = (mag / r)[:, None] * d
    # bincount over the stacked (i, j) index — same dense-scatter pattern
    # as ibm.coupling.spread_with_stencil, and much faster than the two
    # np.add.at passes it replaces.  Summation order per vertex matches
    # the old path exactly: +fij contributions in pair order, then -fij.
    m = len(i)
    idx = _scratch_buf("pair_idx", (2 * m,), np.int64)
    idx[:m] = i
    idx[m:] = j
    w = _scratch_buf("pair_w", (2 * m,))
    for axis in range(3):
        w[:m] = fij[:, axis]
        np.negative(fij[:, axis], out=w[m:])
        forces[:, axis] = np.bincount(idx, weights=w, minlength=n)
    return forces
