"""Background uniform subgrid for neighbor queries (Section 2.4.2).

The paper's overlap-removal algorithm "detects overlaps by identifying
nearby cells at each vertex of the tested cell, using a background uniform
subgrid".  :class:`UniformSubgrid` is that structure: points are binned
into cubic cells of the query cutoff size, so a radius query touches only
the 27 surrounding bins.
"""

from __future__ import annotations

import numpy as np


class UniformSubgrid:
    """Hash grid over 3D points supporting fixed-radius neighbor queries."""

    def __init__(self, cell_size: float):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        self.cell_size = float(cell_size)
        self._bins: dict[tuple[int, int, int], list[int]] = {}
        self._points = np.empty((0, 3), dtype=np.float64)
        self._labels = np.empty(0, dtype=np.int64)

    def __len__(self) -> int:
        return len(self._points)

    def _key(self, p: np.ndarray) -> tuple[int, int, int]:
        return tuple(np.floor(p / self.cell_size).astype(np.int64))

    def insert(self, points: np.ndarray, labels: np.ndarray | int) -> None:
        """Insert points with integer labels (e.g. owning cell global IDs)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        labels = np.broadcast_to(np.asarray(labels, dtype=np.int64), len(points))
        start = len(self._points)
        self._points = np.vstack([self._points, points])
        self._labels = np.concatenate([self._labels, labels])
        keys = np.floor(points / self.cell_size).astype(np.int64)
        for i, key in enumerate(map(tuple, keys)):
            self._bins.setdefault(key, []).append(start + i)

    def query(
        self, point: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Indices and labels of stored points within ``radius`` of ``point``.

        ``radius`` must not exceed the subgrid cell size (one-ring search).
        """
        if radius > self.cell_size * (1 + 1e-12):
            raise ValueError("query radius exceeds subgrid cell size")
        point = np.asarray(point, dtype=np.float64)
        kx, ky, kz = self._key(point)
        candidates: list[int] = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    candidates.extend(
                        self._bins.get((kx + dx, ky + dy, kz + dz), ())
                    )
        if not candidates:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        idx = np.asarray(candidates, dtype=np.int64)
        d2 = ((self._points[idx] - point) ** 2).sum(axis=1)
        hit = idx[d2 <= radius * radius]
        return hit, self._labels[hit]

    def query_labels_near(self, points: np.ndarray, radius: float) -> set[int]:
        """Union of labels found within ``radius`` of any of the points."""
        out: set[int] = set()
        for p in np.atleast_2d(points):
            _, labels = self.query(p, radius)
            out.update(int(l) for l in labels)
        return out
