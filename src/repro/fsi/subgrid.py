"""Background uniform subgrid for neighbor queries (Section 2.4.2).

The paper's overlap-removal algorithm "detects overlaps by identifying
nearby cells at each vertex of the tested cell, using a background uniform
subgrid".  :class:`UniformSubgrid` is that structure: points are binned
into cubic cells of the query cutoff size, so a radius query touches only
the 27 surrounding bins.

The index is CSR-style over sorted bin arrays rather than a dict of
Python lists: per-axis bin coordinates are compressed with ``np.unique``
(which also sidesteps integer overflow when tiny cell sizes produce huge
raw bin coordinates), linearized, and stably argsorted into one
``order`` array with per-bin start offsets.  Queries — including the
batched :meth:`query_labels_near` over thousands of probe points — run as
pure array operations with zero per-point Python work.  ``insert`` only
appends and caches the new points' bin keys; the sort index is rebuilt
lazily on the next query, so interleaved insert/query patterns (tile
stamping, overlap removal) pay one incremental re-sort per flush instead
of per-point dictionary churn.
"""

from __future__ import annotations

import numpy as np

# Reference kernel body lives in the registry's numpy backend (definition
# site chosen to keep ``repro.kernels`` import-cycle-free); re-exported
# here because this module is its natural API home.
from ..kernels.numpy_backend import subgrid_query  # noqa: F401

#: The 27 neighbor-bin offsets of a one-ring search, shape (27, 3).
_NEIGHBOR_OFFSETS = np.stack(
    np.meshgrid(*([np.arange(-1, 2)] * 3), indexing="ij"), axis=-1
).reshape(-1, 3)


class UniformSubgrid:
    """Hash grid over 3D points supporting fixed-radius neighbor queries.

    ``kernels`` selects the compute backend for the batched candidate
    distance filter (the hot loop of :meth:`query_labels_near`); the bin
    bookkeeping itself stays numpy.
    """

    def __init__(self, cell_size: float, kernels: str | None = None):
        if cell_size <= 0:
            raise ValueError("cell size must be positive")
        from ..kernels import get_kernel  # deferred: registry imports us

        self._query_kernel = get_kernel("subgrid_query", kernels)
        self.cell_size = float(cell_size)
        self._points = np.empty((0, 3), dtype=np.float64)
        self._labels = np.empty(0, dtype=np.int64)
        #: Per-point 3D bin keys, computed once at insert time.
        self._keys = np.empty((0, 3), dtype=np.int64)
        #: Number of points covered by the current CSR index.
        self._n_indexed = 0
        # CSR index state (valid when _n_indexed == len(self._points)):
        self._axis_coords: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * 3
        self._bin_lin = np.empty(0, dtype=np.int64)  # sorted unique bin ids
        self._bin_start = np.empty(0, dtype=np.intp)
        self._bin_count = np.empty(0, dtype=np.intp)
        self._order = np.empty(0, dtype=np.intp)  # point index, bin-sorted

    def __len__(self) -> int:
        return len(self._points)

    # ------------------------------------------------------------------
    def insert(self, points: np.ndarray, labels: np.ndarray | int) -> None:
        """Insert points with integer labels (e.g. owning cell global IDs)."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        labels = np.broadcast_to(np.asarray(labels, dtype=np.int64), len(points))
        self._points = np.vstack([self._points, points])
        self._labels = np.concatenate([self._labels, labels])
        keys = np.floor(points / self.cell_size).astype(np.int64)
        self._keys = np.vstack([self._keys, keys])
        # The CSR index is now stale; rebuilt lazily by the next query.

    def _rebuild(self) -> None:
        """(Re)build the CSR bin index over every stored point."""
        n = len(self._points)
        if self._n_indexed == n:
            return
        # Per-axis coordinate compression: raw bin coordinates can be huge
        # for tiny cell sizes, so linearize compressed ordinals instead.
        inv = []
        dims = []
        for d in range(3):
            uniq, inv_d = np.unique(self._keys[:, d], return_inverse=True)
            self._axis_coords[d] = uniq
            inv.append(inv_d.astype(np.int64))
            dims.append(len(uniq))
        lin = (inv[0] * dims[1] + inv[1]) * dims[2] + inv[2]
        order = np.argsort(lin, kind="stable")
        sorted_lin = lin[order]
        if n:
            is_start = np.empty(n, dtype=bool)
            is_start[0] = True
            np.not_equal(sorted_lin[1:], sorted_lin[:-1], out=is_start[1:])
            starts = np.flatnonzero(is_start)
        else:
            starts = np.empty(0, dtype=np.intp)
        self._order = order
        self._bin_lin = sorted_lin[starts]
        self._bin_start = starts.astype(np.intp)
        self._bin_count = np.diff(np.concatenate([starts, [n]])).astype(np.intp)
        self._n_indexed = n

    # ------------------------------------------------------------------
    def _candidates(
        self, points: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stored-point and probe-point index pairs from the 27-bin ring.

        Returns ``(slot, probe)`` arrays of equal length: ``slot`` indexes
        the stored points, ``probe`` the query points.  Each stored point
        appears at most once per probe (bins partition the points and the
        27 candidate bins of one probe are distinct).
        """
        self._rebuild()
        m = len(points)
        if m == 0 or len(self._points) == 0:
            e = np.empty(0, dtype=np.intp)
            return e, e
        probe_keys = np.floor(points / self.cell_size).astype(np.int64)
        # (M, 27, 3) candidate bin keys, flattened to (M*27, 3).
        cand = (probe_keys[:, None, :] + _NEIGHBOR_OFFSETS[None, :, :]).reshape(
            -1, 3
        )
        probe = np.repeat(np.arange(m, dtype=np.intp), len(_NEIGHBOR_OFFSETS))
        # Per-axis compressed lookup; bins absent on any axis cannot match.
        valid = np.ones(len(cand), dtype=bool)
        comp = np.empty((len(cand), 3), dtype=np.int64)
        for d in range(3):
            uniq = self._axis_coords[d]
            pos = np.searchsorted(uniq, cand[:, d])
            pos_c = np.minimum(pos, len(uniq) - 1)
            valid &= uniq[pos_c] == cand[:, d]
            comp[:, d] = pos_c
        dims = [len(self._axis_coords[d]) for d in range(3)]
        lin = (comp[:, 0] * dims[1] + comp[:, 1]) * dims[2] + comp[:, 2]
        bpos = np.searchsorted(self._bin_lin, lin[valid])
        bpos_c = np.minimum(bpos, len(self._bin_lin) - 1)
        hit = self._bin_lin[bpos_c] == lin[valid]
        bins = bpos_c[hit]
        probe = probe[valid][hit]
        # Ragged expansion of each matched bin's CSR run, loop-free.
        counts = self._bin_count[bins]
        total = int(counts.sum())
        if total == 0:
            e = np.empty(0, dtype=np.intp)
            return e, e
        run_start = np.repeat(self._bin_start[bins], counts)
        within = np.arange(total, dtype=np.intp) - np.repeat(
            np.cumsum(counts) - counts, counts
        )
        slot = self._order[run_start + within]
        return slot, np.repeat(probe, counts)

    def _check_radius(self, radius: float) -> None:
        if radius > self.cell_size * (1 + 1e-12):
            raise ValueError("query radius exceeds subgrid cell size")

    def query(
        self, point: np.ndarray, radius: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Indices and labels of stored points within ``radius`` of ``point``.

        ``radius`` must not exceed the subgrid cell size (one-ring search).
        """
        self._check_radius(radius)
        point = np.asarray(point, dtype=np.float64).reshape(1, 3)
        slot, probe = self._candidates(point)
        if len(slot) == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        mask = self._query_kernel(self._points, slot, point, probe, radius)
        hit = np.asarray(slot[mask], dtype=np.int64)
        return hit, self._labels[hit]

    def query_labels_near(self, points: np.ndarray, radius: float) -> set[int]:
        """Union of labels found within ``radius`` of any of the points.

        Fully batched: candidate generation, the distance filter and the
        label union are single array operations over every probe point.
        """
        self._check_radius(radius)
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        slot, probe = self._candidates(points)
        if len(slot) == 0:
            return set()
        mask = self._query_kernel(self._points, slot, points, probe, radius)
        hit = slot[mask]
        return set(np.unique(self._labels[hit]).tolist())
