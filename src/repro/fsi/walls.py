"""Cell-wall repulsion.

Bounce-back walls enforce no-slip on the fluid but do not, by themselves,
keep Lagrangian cell vertices out of the solid: near-wall lubrication
films thinner than one lattice spacing are unresolved, so FSI codes add a
short-range wall repulsion (the same form HARVEY-family solvers use for
the cell-cell contact).  The force acts on vertices within a cutoff of
the wall surface, along the outward wall normal obtained from the
geometry SDF by central differences:

    F(d) = k_w (1 - d/d_c) n_hat       for wall distance d < d_c.
"""

from __future__ import annotations

import numpy as np


def wall_normals_from_sdf(sdf, points: np.ndarray, h: float) -> np.ndarray:
    """Outward-fluid normals (-grad sdf direction) at the given points.

    ``sdf`` follows the package convention: negative inside the fluid, so
    the repulsion direction (into the fluid) is -grad(sdf), normalized.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    fn = sdf.sdf if hasattr(sdf, "sdf") else sdf
    grad = np.empty_like(pts)
    for d in range(3):
        dp = pts.copy()
        dm = pts.copy()
        dp[:, d] += h
        dm[:, d] -= h
        grad[:, d] = (fn(dp) - fn(dm)) / (2.0 * h)
    norm = np.linalg.norm(grad, axis=1, keepdims=True)
    return -grad / np.maximum(norm, 1e-300)


def wall_repulsion_forces(
    sdf,
    vertices: np.ndarray,
    cutoff: float,
    stiffness: float,
    fd_step: float | None = None,
) -> np.ndarray:
    """Repulsive force on every vertex closer than ``cutoff`` to the wall.

    Parameters
    ----------
    sdf:
        Geometry with the negative-inside convention.
    vertices:
        (N, 3) positions [m].
    cutoff:
        Interaction range d_c [m].
    stiffness:
        Peak force k_w at zero wall distance [N].
    fd_step:
        Step for the SDF gradient (default: cutoff / 4).
    """
    verts = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
    forces = np.zeros_like(verts)
    if cutoff <= 0.0 or len(verts) == 0:
        return forces
    fn = sdf.sdf if hasattr(sdf, "sdf") else sdf
    s = np.asarray(fn(verts), dtype=np.float64)
    # Wall distance for fluid-side points is -sdf; points at or past the
    # wall (sdf >= 0) get the full-strength push back into the fluid.
    near = s > -cutoff
    if not near.any():
        return forces
    h = fd_step if fd_step is not None else cutoff / 4.0
    normals = wall_normals_from_sdf(sdf, verts[near], h)
    d = np.clip(-s[near], 0.0, cutoff)
    mag = stiffness * (1.0 - d / cutoff)
    forces[near] = mag[:, None] * normals
    return forces
