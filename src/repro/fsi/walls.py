"""Cell-wall repulsion.

Bounce-back walls enforce no-slip on the fluid but do not, by themselves,
keep Lagrangian cell vertices out of the solid: near-wall lubrication
films thinner than one lattice spacing are unresolved, so FSI codes add a
short-range wall repulsion (the same form HARVEY-family solvers use for
the cell-cell contact).  The force acts on vertices within a cutoff of
the wall surface, along the outward wall normal obtained from the
geometry SDF by central differences:

    F(d) = k_w (1 - d/d_c) n_hat       for wall distance d < d_c.
"""

from __future__ import annotations

import numpy as np


def wall_normals_from_sdf(sdf, points: np.ndarray, h: float) -> np.ndarray:
    """Outward-fluid normals (-grad sdf direction) at the given points.

    ``sdf`` follows the package convention: negative inside the fluid, so
    the repulsion direction (into the fluid) is -grad(sdf), normalized.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=np.float64))
    fn = sdf.sdf if hasattr(sdf, "sdf") else sdf
    grad = np.empty_like(pts)
    for d in range(3):
        dp = pts.copy()
        dm = pts.copy()
        dp[:, d] += h
        dm[:, d] -= h
        grad[:, d] = (fn(dp) - fn(dm)) / (2.0 * h)
    norm = np.linalg.norm(grad, axis=1, keepdims=True)
    return -grad / np.maximum(norm, 1e-300)


def wall_repulsion_forces(
    sdf,
    vertices: np.ndarray,
    cutoff: float,
    stiffness: float,
    fd_step: float | None = None,
) -> np.ndarray:
    """Repulsive force on every vertex closer than ``cutoff`` to the wall.

    Parameters
    ----------
    sdf:
        Geometry with the negative-inside convention.
    vertices:
        (N, 3) positions [m].
    cutoff:
        Interaction range d_c [m].
    stiffness:
        Peak force k_w at zero wall distance [N].
    fd_step:
        Step for the SDF gradient (default: cutoff / 4).
    """
    verts = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
    forces = np.zeros_like(verts)
    if cutoff <= 0.0 or len(verts) == 0:
        return forces
    fn = sdf.sdf if hasattr(sdf, "sdf") else sdf
    s = np.asarray(fn(verts), dtype=np.float64)
    # Wall distance for fluid-side points is -sdf; points at or past the
    # wall (sdf >= 0) get the full-strength push back into the fluid.
    near = s > -cutoff
    if not near.any():
        return forces
    h = fd_step if fd_step is not None else cutoff / 4.0
    normals = wall_normals_from_sdf(sdf, verts[near], h)
    d = np.clip(-s[near], 0.0, cutoff)
    mag = stiffness * (1.0 - d / cutoff)
    forces[near] = mag[:, None] * normals
    return forces


class WallProximityPrefilter:
    """Per-geometry lattice SDF sampling that skips provably-far vertices.

    The per-step wall pass evaluates the geometry SDF at every vertex even
    though almost all of them sit far inside the fluid.  This prefilter
    samples the SDF once at every lattice node of the (stationary) window
    and uses the SDF's Lipschitz bound to skip vertices whose containing
    cell's node value guarantees ``sdf < -cutoff``: a vertex is at most
    ``sqrt(3) * spacing`` from its cell's floor node, so
    ``s(node) < -(cutoff + L * sqrt(3) * spacing)`` implies zero force.
    The surviving candidates go through the exact
    :func:`wall_repulsion_forces` path, making the combined result bitwise
    identical to the unfiltered evaluation (skipped rows are exactly the
    zero rows the full pass would produce).

    The sampling is valid for one ``(origin, spacing, shape)`` window
    placement; the stepper rebuilds it via :meth:`matches` when the APR
    window moves.
    """

    def __init__(self, sdf, grid, cutoff: float, lipschitz: float | None = None):
        self.sdf = sdf
        self.cutoff = float(cutoff)
        self.origin = np.asarray(grid.origin, dtype=np.float64).copy()
        self.spacing = float(grid.spacing)
        self.shape = tuple(grid.shape)
        if lipschitz is None:
            # True signed distance functions are 1-Lipschitz; geometries
            # with steeper level-set gradients can declare theirs.
            lipschitz = getattr(sdf, "sdf_lipschitz", 1.0)
        self.margin = float(lipschitz) * np.sqrt(3.0) * self.spacing
        fn = sdf.sdf if hasattr(sdf, "sdf") else sdf
        nodes = (
            self.origin
            + self.spacing * np.indices(self.shape).reshape(3, -1).T
        )
        self._node_sdf = np.asarray(fn(nodes), dtype=np.float64).reshape(
            self.shape
        )

    def matches(self, grid) -> bool:
        """True while the sampled window placement is still current."""
        return (
            self.shape == tuple(grid.shape)
            and self.spacing == float(grid.spacing)
            and np.array_equal(self.origin, np.asarray(grid.origin))
        )

    def forces(
        self,
        vertices: np.ndarray,
        cutoff: float,
        stiffness: float,
        fd_step: float | None = None,
    ) -> np.ndarray:
        """Wall forces, bitwise equal to :func:`wall_repulsion_forces`."""
        verts = np.atleast_2d(np.asarray(vertices, dtype=np.float64))
        out = np.zeros_like(verts)
        if cutoff <= 0.0 or len(verts) == 0:
            return out
        cell = np.floor((verts - self.origin) / self.spacing).astype(np.int64)
        hi = np.asarray(self.shape, dtype=np.int64) - 1
        inb = ((cell >= 0) & (cell <= hi)).all(axis=1)
        # Out-of-window vertices have no sampled node: always candidates.
        cand = ~inb
        if inb.any():
            ci = cell[inb]
            s_node = self._node_sdf[ci[:, 0], ci[:, 1], ci[:, 2]]
            cand[inb] = s_node >= -(cutoff + self.margin)
        if cand.any():
            out[cand] = wall_repulsion_forces(
                self.sdf, verts[cand], cutoff, stiffness, fd_step
            )
        return out
