"""Coupled LBM + IBM + membrane time stepper (the eFSI model).

One :class:`FSIStepper` step performs the paper's Section 2.3 sequence on
a single lattice:

1. evaluate membrane + contact forces at the current cell shapes,
2. spread them onto the fluid with the delta kernel (Eq. 6),
3. advance the LBM with Guo forcing (Eq. 1),
4. interpolate the new fluid velocity at the vertices (Eq. 4),
5. advect the vertices with the no-slip update (Eq. 5).

The same stepper drives the fine window inside the APR model; the eFSI
reference simply uses it over the whole domain.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ibm.coupling import IBMCoupler
from ..lbm.grid import Grid
from ..lbm.solver import BoundaryHandler, LBMSolver
from ..telemetry import get_telemetry
from ..units import UnitSystem
from .cell_manager import CellManager


class FSIStepper:
    """Cell-laden flow on one lattice level.

    Parameters
    ----------
    grid:
        Fluid lattice (its ``tau`` sets the suspending-fluid viscosity —
        plasma for cell-resolved regions).
    units:
        Physical<->lattice conversion for this lattice level.
    cells:
        The cell population (may start empty).
    boundaries:
        LBM boundary handlers (walls, inlets, ...).
    kernel:
        IBM delta kernel name; 'cosine4' is the paper's choice.
    mode:
        'clip' for bounded windows, 'wrap' for fully periodic domains.
    body_force:
        Constant physical body-force density [N/m^3] driving the flow
        (e.g. the pressure-gradient equivalent for tube flow).
    wall_geometry:
        Optional SDF geometry: vertices within ``wall_cutoff`` of the
        wall receive a short-range repulsion keeping cells out of the
        unresolved lubrication layer (see :mod:`repro.fsi.walls`).
    """

    def __init__(
        self,
        grid: Grid,
        units: UnitSystem,
        cells: CellManager | None = None,
        boundaries: Sequence[BoundaryHandler] = (),
        kernel: str = "cosine4",
        mode: str = "clip",
        body_force: np.ndarray | None = None,
        wall_geometry=None,
        wall_cutoff: float = 0.5e-6,
        wall_stiffness: float = 2.0e-10,
    ) -> None:
        self.grid = grid
        self.units = units
        self.cells = cells if cells is not None else CellManager()
        self.coupler = IBMCoupler(grid, kernel=kernel, mode=mode)
        self.solver = LBMSolver(grid, boundaries)
        self.wall_geometry = wall_geometry
        self.wall_cutoff = wall_cutoff
        self.wall_stiffness = wall_stiffness
        self.body_force_lattice = np.zeros(3)
        if body_force is not None:
            self.body_force_lattice = np.array(
                [units.force_density_to_lattice(f) for f in body_force]
            )
        self.step_count = 0
        # Packed vertex snapshot shared between the pre-collision spread
        # and the post-stream interpolation of one step: positions do not
        # change in between, so the IBM stencil is computed exactly once.
        self._step_verts: np.ndarray | None = None
        self._step_cells = None
        self._step_generation = -1

    # ------------------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance fluid and cells by ``n`` steps of this level's dt."""
        tel = get_telemetry()
        for _ in range(n):
            self._spread_forces(tel)
            with tel.phase("collide_stream"):
                self.solver.step()
            self._advect_cells(tel)
            self.step_count += 1

    def _spread_forces(self, tel=None) -> None:
        if tel is None:
            tel = get_telemetry()
        g = self.grid
        g.force[:] = self.body_force_lattice[:, None, None, None]
        self._step_verts = None
        self._step_cells = None
        if self.cells.n_cells == 0:
            return
        with tel.phase("forces"):
            forces, verts, cells = self.cells.total_forces()
            if self.wall_geometry is not None:
                from .walls import wall_repulsion_forces

                forces = forces + wall_repulsion_forces(
                    self.wall_geometry, verts, self.wall_cutoff, self.wall_stiffness
                )
            forces_lat = forces * self.units.force_to_lattice(1.0)
        with tel.phase("spread"):
            self.coupler.begin_step(verts)
            self.coupler.spread_forces(verts, forces_lat)
        self._step_verts = verts
        self._step_cells = cells
        self._step_generation = self.cells.generation

    def _advect_cells(self, tel=None) -> None:
        if self.cells.n_cells == 0:
            return
        if tel is None:
            tel = get_telemetry()
        with tel.phase("advect"):
            u = self.solver.velocity()
            verts = self._step_verts
            if verts is None or self._step_generation != self.cells.generation:
                # Population changed since the spread (or spread was
                # skipped): rebuild the snapshot and drop the stencil.
                self.coupler.end_step()
                verts, _, _ = self.cells.packed_vertices()
            v_lat = self.coupler.interpolate_velocity(verts, u)
            # Vertices move now — the cached stencil must not outlive them.
            self.coupler.end_step()
            self._step_verts = None
            self._step_cells = None
            # One lattice time step: dx_lat = u_lat * 1, physical = u_lat * dx.
            self.cells.update_vertices(v_lat * self.units.dx)
            self.cells.set_velocities(v_lat * (self.units.dx / self.units.dt))

    # ------------------------------------------------------------------
    def fluid_velocity(self) -> np.ndarray:
        """Physical velocity field (3, nx, ny, nz) [m/s]."""
        u = self.solver.velocity()
        return u * (self.units.dx / self.units.dt)

    def pressure_drop(self, axis: int = 2) -> float:
        """Mean physical pressure difference between the first and last
        fluid slabs along ``axis`` [Pa] (used with Eq. 12)."""
        rho, _ = self.solver.macroscopic()
        fluid = ~self.grid.solid
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = 0
        sl_hi[axis] = self.grid.shape[axis] - 1
        lo_mask = fluid[tuple(sl_lo)]
        hi_mask = fluid[tuple(sl_hi)]
        p_lo = rho[tuple(sl_lo)][lo_mask].mean()
        p_hi = rho[tuple(sl_hi)][hi_mask].mean()
        cs2 = 1.0 / 3.0
        return self.units.pressure_to_physical(cs2 * (p_lo - p_hi))
