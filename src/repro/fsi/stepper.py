"""Coupled LBM + IBM + membrane time stepper (the eFSI model).

One :class:`FSIStepper` step performs the paper's Section 2.3 sequence on
a single lattice:

1. evaluate membrane + contact forces at the current cell shapes,
2. spread them onto the fluid with the delta kernel (Eq. 6),
3. advance the LBM with Guo forcing (Eq. 1),
4. interpolate the new fluid velocity at the vertices (Eq. 4),
5. advect the vertices with the no-slip update (Eq. 5).

The same stepper drives the fine window inside the APR model; the eFSI
reference simply uses it over the whole domain.

The cell-side phases (1, 2 and 4) execute on a
:class:`~repro.parallel.fsi.ParallelFSIRuntime`, which shards membrane
forces by cell chunk and the IBM spread/interpolation by marker and
lattice-node chunk across the ``serial`` | ``threads`` | ``processes``
executor backends.  Every backend is bitwise identical to the serial
step; pick one with ``backend=`` / ``workers=`` or the
``REPRO_PARALLEL_BACKEND`` / ``REPRO_PARALLEL_WORKERS`` environment
variables.  The worker pool and its shared-memory segments are created
lazily on the first cell-laden step and released by :meth:`close` (or a
GC finalizer when the stepper is dropped unclosed).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ibm.coupling import IBMCoupler
from ..lbm.grid import Grid
from ..lbm.solver import BoundaryHandler, LBMSolver
from ..parallel.fsi import ParallelFSIRuntime, resolve_fsi_backend
from ..telemetry import get_telemetry
from ..units import UnitSystem
from .cell_manager import CellManager
from .walls import WallProximityPrefilter


class FSIStepper:
    """Cell-laden flow on one lattice level.

    Parameters
    ----------
    grid:
        Fluid lattice (its ``tau`` sets the suspending-fluid viscosity —
        plasma for cell-resolved regions).
    units:
        Physical<->lattice conversion for this lattice level.
    cells:
        The cell population (may start empty).
    boundaries:
        LBM boundary handlers (walls, inlets, ...).
    kernel:
        IBM delta kernel name; 'cosine4' is the paper's choice.
    mode:
        'clip' for bounded windows, 'wrap' for fully periodic domains.
    body_force:
        Constant physical body-force density [N/m^3] driving the flow
        (e.g. the pressure-gradient equivalent for tube flow).
    wall_geometry:
        Optional SDF geometry: vertices within ``wall_cutoff`` of the
        wall receive a short-range repulsion keeping cells out of the
        unresolved lubrication layer (see :mod:`repro.fsi.walls`).
    backend, workers:
        Executor backend and worker count for the parallel FSI runtime
        (``None``: resolve from the ``REPRO_PARALLEL_*`` environment,
        defaulting to ``serial``).
    kernels:
        Kernels backend for the compiled hot paths (``"numpy"`` |
        ``"numba"`` | ``"arrayapi:numpy"`` | ``"arrayapi:cupy"``;
        ``None`` resolves via ``REPRO_KERNELS``, which also overrides an
        explicit argument — see :mod:`repro.kernels`).
    """

    def __init__(
        self,
        grid: Grid,
        units: UnitSystem,
        cells: CellManager | None = None,
        boundaries: Sequence[BoundaryHandler] = (),
        kernel: str = "cosine4",
        mode: str = "clip",
        body_force: np.ndarray | None = None,
        wall_geometry=None,
        wall_cutoff: float = 0.5e-6,
        wall_stiffness: float = 2.0e-10,
        backend: str | None = None,
        workers: int | None = None,
        kernels: str | None = None,
    ) -> None:
        from ..kernels import resolve_kernels

        self.grid = grid
        self.units = units
        self.kernels = resolve_kernels(kernels)
        self.cells = (
            cells if cells is not None else CellManager(kernels=self.kernels)
        )
        # Retained for direct IBM access (tests, diagnostics); the hot
        # path routes through the parallel runtime instead.
        self.coupler = IBMCoupler(grid, kernel=kernel, mode=mode,
                                  kernels=self.kernels)
        self.solver = LBMSolver(grid, boundaries, kernels=self.kernels)
        self.kernel = kernel
        self.mode = mode
        self.wall_geometry = wall_geometry
        self.wall_cutoff = wall_cutoff
        self.wall_stiffness = wall_stiffness
        self.backend, self.n_workers = resolve_fsi_backend(backend, workers)
        self._runtime: ParallelFSIRuntime | None = None
        self._wall_prefilter: WallProximityPrefilter | None = None
        self.body_force_lattice = np.zeros(3)
        if body_force is not None:
            self.body_force_lattice = np.array(
                [units.force_density_to_lattice(f) for f in body_force]
            )
        self.step_count = 0
        # Packed vertex snapshot shared between the pre-collision spread
        # and the post-stream interpolation of one step: positions do not
        # change in between, so the IBM stencil is computed exactly once.
        self._step_verts: np.ndarray | None = None
        self._step_cells = None
        self._step_generation = -1

    # ------------------------------------------------------------------
    @property
    def runtime(self) -> ParallelFSIRuntime:
        """The parallel FSI runtime (created lazily on first use).

        Lazy so that short-lived helper steppers (seeding equilibration)
        and cell-free runs never pay for a worker pool.
        """
        if self._runtime is None:
            self._runtime = ParallelFSIRuntime(
                self.grid,
                kernel=self.kernel,
                mode=self.mode,
                backend=self.backend,
                n_workers=self.n_workers,
                kernels=self.kernels,
            )
        return self._runtime

    def close(self) -> None:
        """Release the runtime's worker pool and shared memory (idempotent)."""
        if self._runtime is not None:
            self._runtime.close()
            self._runtime = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # ------------------------------------------------------------------
    def step(self, n: int = 1) -> None:
        """Advance fluid and cells by ``n`` steps of this level's dt."""
        tel = get_telemetry()
        for _ in range(n):
            self._spread_forces(tel)
            with tel.phase("collide_stream"):
                self.solver.step()
            self._advect_cells(tel)
            self.step_count += 1

    def _wall_forces(self, verts: np.ndarray) -> np.ndarray:
        """Wall repulsion via the cached per-window SDF prefilter."""
        pf = self._wall_prefilter
        if pf is None or not pf.matches(self.grid):
            pf = self._wall_prefilter = WallProximityPrefilter(
                self.wall_geometry, self.grid, self.wall_cutoff
            )
        return pf.forces(verts, self.wall_cutoff, self.wall_stiffness)

    def _spread_forces(self, tel=None) -> None:
        if tel is None:
            tel = get_telemetry()
        g = self.grid
        g.force[:] = self.body_force_lattice[:, None, None, None]
        self._step_verts = None
        self._step_cells = None
        if self.cells.n_cells == 0:
            return
        rt = self.runtime
        with tel.phase("forces"):
            forces, verts, cells = rt.total_forces(self.cells)
            if self.wall_geometry is not None:
                forces = forces + self._wall_forces(verts)
            forces_lat = forces * self.units.force_to_lattice(1.0)
        with tel.phase("spread"):
            rt.begin_step(verts)
            rt.spread(forces_lat, g.force)
        self._step_verts = verts
        self._step_cells = cells
        self._step_generation = self.cells.generation

    def _advect_cells(self, tel=None) -> None:
        if self.cells.n_cells == 0:
            return
        if tel is None:
            tel = get_telemetry()
        rt = self.runtime
        with tel.phase("advect"):
            u = self.solver.velocity()
            verts = self._step_verts
            if verts is None or self._step_generation != self.cells.generation:
                # Population changed since the spread (or spread was
                # skipped): rebuild the snapshot and the marker stencil.
                rt.end_step()
                rt.sync_population(self.cells)
                verts, _, _ = self.cells.packed_vertices()
                rt.begin_step(verts)
            v_lat = rt.interpolate(u)
            # Vertices move now — the cached stencil must not outlive them.
            rt.end_step()
            self._step_verts = None
            self._step_cells = None
            # One lattice time step: dx_lat = u_lat * 1, physical = u_lat * dx.
            self.cells.update_vertices(v_lat * self.units.dx)
            self.cells.set_velocities(v_lat * (self.units.dx / self.units.dt))

    # ------------------------------------------------------------------
    def fluid_velocity(self) -> np.ndarray:
        """Physical velocity field (3, nx, ny, nz) [m/s]."""
        u = self.solver.velocity()
        return u * (self.units.dx / self.units.dt)

    def pressure_drop(self, axis: int = 2) -> float:
        """Mean physical pressure difference between the first and last
        fluid slabs along ``axis`` [Pa] (used with Eq. 12)."""
        rho, _ = self.solver.macroscopic()
        fluid = ~self.grid.solid
        sl_lo = [slice(None)] * 3
        sl_hi = [slice(None)] * 3
        sl_lo[axis] = 0
        sl_hi[axis] = self.grid.shape[axis] - 1
        lo_mask = fluid[tuple(sl_lo)]
        hi_mask = fluid[tuple(sl_hi)]
        p_lo = rho[tuple(sl_lo)][lo_mask].mean()
        p_hi = rho[tuple(sl_hi)][hi_mask].mean()
        cs2 = 1.0 / 3.0
        return self.units.pressure_to_physical(cs2 * (p_lo - p_hi))
