"""Fluid-structure interaction: cell-laden LBM flow on a single lattice.

This package is the "eFSI" model of the paper — the fully-resolved
reference against which APR is compared (Section 3.3) — and also supplies
the cell machinery that the APR window reuses: pooled cell storage
(Section 2.4.5 "Cell Memory Management"), the background uniform subgrid
for overlap detection (Section 2.4.2), deterministic overlap removal by
global ID, intercellular contact forces, and the coupled IBM time stepper.
"""

from .pool import VertexPool
from .subgrid import UniformSubgrid
from .cell_manager import CellManager
from .overlap import find_overlapping_vertices, remove_overlaps, cell_overlaps_existing
from .contact import contact_forces
from .walls import wall_repulsion_forces, wall_normals_from_sdf
from .stepper import FSIStepper

__all__ = [
    "VertexPool",
    "UniformSubgrid",
    "CellManager",
    "find_overlapping_vertices",
    "remove_overlaps",
    "cell_overlaps_existing",
    "contact_forces",
    "wall_repulsion_forces",
    "wall_normals_from_sdf",
    "FSIStepper",
]
