"""Overlap detection and deterministic removal (Section 2.4.2).

When a tile of RBCs is stamped into an insertion subregion, some of the
new cells overlap cells already present.  The paper removes them with an
algorithm that (a) finds nearby cells at each vertex of the tested cell
through a background uniform subgrid and (b) breaks conflicts by *global
ID* so the surviving set is identical for any MPI task count.  The same
rule is implemented here: when two cells overlap, the one with the higher
global ID is removed.
"""

from __future__ import annotations

import numpy as np

from ..membrane.cell import Cell
from .subgrid import UniformSubgrid


def find_overlapping_vertices(
    cell_a: "Cell", cell_b: "Cell", cutoff: float
) -> bool:
    """True when any vertex pair across the two cells is closer than cutoff.

    Brute-force reference implementation used by tests to validate the
    subgrid-accelerated path.
    """
    a = cell_a.vertices
    b = cell_b.vertices
    # Broadcasted distance check with an early bounding-box rejection.
    lo_a, hi_a = a.min(axis=0) - cutoff, a.max(axis=0) + cutoff
    if np.any(b.max(axis=0) < lo_a) or np.any(b.min(axis=0) > hi_a):
        return False
    d2 = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=-1)
    return bool((d2 < cutoff * cutoff).any())


def build_subgrid(cells: list["Cell"], cutoff: float) -> UniformSubgrid:
    """Subgrid of all cell vertices labeled by owning global ID."""
    grid = UniformSubgrid(cell_size=cutoff)
    if cells:
        grid.insert(
            np.concatenate([c.vertices for c in cells]),
            np.repeat(
                np.array([c.global_id for c in cells], dtype=np.int64),
                [len(c.vertices) for c in cells],
            ),
        )
    return grid


def cell_overlaps_existing(
    candidate: "Cell", subgrid: UniformSubgrid, cutoff: float
) -> bool:
    """True when ``candidate`` comes within ``cutoff`` of any indexed cell.

    The subgrid must not contain the candidate's own vertices.
    """
    labels = subgrid.query_labels_near(candidate.vertices, cutoff)
    labels.discard(candidate.global_id)
    return bool(labels)


def remove_overlaps(cells: list["Cell"], cutoff: float) -> list["Cell"]:
    """Return the subset of cells surviving deterministic overlap removal.

    Cells are tested in ascending global-ID order against a subgrid of
    already-accepted cells; an overlapping cell (higher ID by
    construction) is dropped.  The result is independent of the input
    ordering and — because IDs are global — of how cells were distributed
    across tasks when they were created.
    """
    survivors: list[Cell] = []
    subgrid = UniformSubgrid(cell_size=cutoff)
    for cell in sorted(cells, key=lambda c: c.global_id):
        if subgrid.query_labels_near(cell.vertices, cutoff):
            continue
        subgrid.insert(cell.vertices, cell.global_id)
        survivors.append(cell)
    return survivors
