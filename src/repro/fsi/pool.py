"""Pre-allocated vertex storage for cell populations.

Implements the paper's "Cell Memory Management" optimization
(Section 2.4.5): all memory for cells is allocated up front with headroom,
and adding/removing a cell shifts slot ownership instead of allocating or
freeing buffers mid-simulation.  Cells receive numpy *views* into the pool
so that batched force kernels can operate on one contiguous array.
"""

from __future__ import annotations

import numpy as np


class VertexPool:
    """Fixed-capacity slab of per-cell vertex blocks.

    Parameters
    ----------
    n_vertices:
        Vertices per cell (all cells in one pool share a topology).
    capacity:
        Number of cell slots pre-allocated.
    growth:
        When full, the pool grows by this factor (a rare, amortized event —
        the paper sizes pools with headroom for exactly this reason).
    """

    def __init__(self, n_vertices: int, capacity: int = 64, growth: float = 2.0):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.n_vertices = int(n_vertices)
        self.growth = float(growth)
        self._data = np.zeros((capacity, self.n_vertices, 3), dtype=np.float64)
        self._free: list[int] = list(range(capacity - 1, -1, -1))
        self._active: set[int] = set()
        self.grow_events = 0

    @property
    def capacity(self) -> int:
        return self._data.shape[0]

    @property
    def n_active(self) -> int:
        return len(self._active)

    def acquire(self, vertices: np.ndarray) -> int:
        """Copy ``vertices`` into a free slot and return the slot id."""
        vertices = np.asarray(vertices, dtype=np.float64)
        if vertices.shape != (self.n_vertices, 3):
            raise ValueError(
                f"expected ({self.n_vertices}, 3) vertices, got {vertices.shape}"
            )
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self._active.add(slot)
        self._data[slot] = vertices
        return slot

    def release(self, slot: int) -> None:
        """Return a slot to the free list (no deallocation)."""
        if slot not in self._active:
            raise KeyError(f"slot {slot} is not active")
        self._active.remove(slot)
        self._free.append(slot)

    def view(self, slot: int) -> np.ndarray:
        """Writable view of one cell's vertex block."""
        if slot not in self._active:
            raise KeyError(f"slot {slot} is not active")
        return self._data[slot]

    def batch(self, slots: list[int]) -> np.ndarray:
        """Gather the given slots into a contiguous (B, V, 3) batch (copy)."""
        return self.gather(slots)

    def gather(self, slots, out: np.ndarray | None = None) -> np.ndarray:
        """Gather slots into a (B, V, 3) batch, into ``out`` when given."""
        idx = np.asarray(slots, dtype=np.intp)
        if out is None:
            return self._data[idx]
        np.take(self._data, idx, axis=0, out=out)
        return out

    def write_batch(self, slots: list[int], values: np.ndarray) -> None:
        """Scatter a (B, V, 3) batch back into the pool."""
        self._data[np.asarray(slots, dtype=np.intp)] = values

    def scatter_add(self, slots, values: np.ndarray) -> None:
        """Add a (B, V, 3) batch into the pool slots (one vectorized op).

        Slot ids must be unique (they always are for one group), so the
        fancy-indexed in-place add touches each block exactly once.
        """
        self._data[np.asarray(slots, dtype=np.intp)] += values

    def _grow(self) -> None:
        old = self._data
        new_cap = max(self.capacity + 1, int(self.capacity * self.growth))
        self._data = np.zeros((new_cap, self.n_vertices, 3), dtype=np.float64)
        self._data[: old.shape[0]] = old
        self._free.extend(range(new_cap - 1, old.shape[0] - 1, -1))
        self.grow_events += 1
