"""Cell population management with pooled storage and batched mechanics.

:class:`CellManager` owns every cell in one simulation region.  Cells are
grouped by (mesh topology, mechanical moduli); each group's vertices live
in a :class:`~repro.fsi.pool.VertexPool` so membrane forces for the whole
group evaluate as one batched array operation — the Python counterpart of
the paper's pooled GPU cell buffers (Section 2.4.5).

On top of the pools the manager keeps a *packed* view of the population:
one persistent (N, 3) vertex array, the per-vertex cell ordinals, and the
flat cell list, all rebuilt only when membership changes (``add`` /
``remove`` / a pool growth bump the generation counter).  The per-step
hot path (force assembly, IBM coupling, advection) works on these packed
arrays with one vectorized gather/scatter per group instead of Python
loops over cells.

Global IDs are allocated monotonically by the manager and never reused,
which the deterministic overlap-removal rule (Section 2.4.2) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..kernels import get_kernel_table, resolve_kernels
from ..membrane.cell import Cell, CellKind
from ..telemetry import get_telemetry
from .pool import VertexPool


def _group_key(cell: Cell) -> tuple:
    return (
        id(cell.reference),
        cell.shear_modulus,
        cell.skalak_C,
        cell.bending_modulus,
        cell.k_area,
        cell.k_volume,
    )


@dataclass
class _Group:
    reference: object
    pool: VertexPool
    cells: list[Cell] = field(default_factory=list)
    slots: list[int] = field(default_factory=list)
    last_grow_events: int = 0


class _PackedCache:
    """Structure of the packed population, valid for one generation."""

    __slots__ = ("generation", "verts", "forces", "ordinals", "cells",
                 "segments", "splits")

    def __init__(self, generation: int):
        self.generation = generation
        #: (group, slots ndarray, packed start row, packed stop row)
        self.segments: list[tuple[_Group, np.ndarray, int, int]] = []
        self.cells: list[Cell] = []
        self.ordinals = np.empty(0, dtype=np.int64)
        self.verts = np.empty((0, 3), dtype=np.float64)
        self.forces = np.empty((0, 3), dtype=np.float64)
        #: Row offsets between consecutive cells (np.split boundaries).
        self.splits = np.empty(0, dtype=np.intp)


class CellManager:
    """Container for all cells in a region, with batched force evaluation."""

    def __init__(
        self,
        contact_cutoff: float = 0.5e-6,
        contact_stiffness: float = 2.0e-10,
        kernels: str | None = None,
    ):
        self.kernels = resolve_kernels(kernels)
        self._kt = get_kernel_table(self.kernels)
        self._groups: dict[tuple, _Group] = {}
        self._by_id: dict[int, tuple[tuple, int]] = {}  # id -> (group key, idx)
        self._next_id = 0
        self.contact_cutoff = contact_cutoff
        self.contact_stiffness = contact_stiffness
        self._generation = 0
        self._position_version = 0
        self._packed: _PackedCache | None = None
        self._subgrid = None
        self._subgrid_key: tuple | None = None

    # -- id allocation ------------------------------------------------------
    def allocate_id(self) -> int:
        gid = self._next_id
        self._next_id += 1
        return gid

    def reserve_ids(self, count: int) -> range:
        """Reserve a contiguous block of IDs (used by tile stamping)."""
        start = self._next_id
        self._next_id += count
        return range(start, start + count)

    # -- membership ---------------------------------------------------------
    @property
    def generation(self) -> int:
        """Bumped whenever membership or storage layout changes."""
        return self._generation

    @property
    def position_version(self) -> int:
        """Bumped whenever vertex positions move (advection)."""
        return self._position_version

    @property
    def cells(self) -> list[Cell]:
        out: list[Cell] = []
        for g in self._groups.values():
            out.extend(g.cells)
        return out

    @property
    def n_cells(self) -> int:
        return sum(len(g.cells) for g in self._groups.values())

    def __contains__(self, global_id: int) -> bool:
        return global_id in self._by_id

    def get(self, global_id: int) -> Cell:
        key, idx = self._by_id[global_id]
        return self._groups[key].cells[idx]

    def add(self, cell: Cell) -> Cell:
        """Insert a cell; its vertices are rebound into pooled storage."""
        if cell.global_id in self._by_id:
            raise ValueError(f"duplicate global id {cell.global_id}")
        if cell.global_id >= self._next_id:
            self._next_id = cell.global_id + 1
        key = _group_key(cell)
        group = self._groups.get(key)
        if group is None:
            group = _Group(
                reference=cell.reference,
                pool=VertexPool(cell.reference.n_vertices),
            )
            self._groups[key] = group
        slot = group.pool.acquire(cell.vertices)
        if group.pool.grow_events != group.last_grow_events:
            self._rebind(group)
            get_telemetry().inc("cells.pool_grows")
        cell.vertices = group.pool.view(slot)
        group.cells.append(cell)
        group.slots.append(slot)
        self._by_id[cell.global_id] = (key, len(group.cells) - 1)
        self._generation += 1
        get_telemetry().inc("cells.inserted")
        return cell

    def remove(self, global_id: int) -> Cell:
        """Remove a cell by global ID; its pool slot is recycled."""
        key, idx = self._by_id.pop(global_id)
        group = self._groups[key]
        cell = group.cells[idx]
        group.pool.release(group.slots[idx])
        # Swap-remove keeps lists compact; fix the moved cell's index.
        last = len(group.cells) - 1
        if idx != last:
            group.cells[idx] = group.cells[last]
            group.slots[idx] = group.slots[last]
            self._by_id[group.cells[idx].global_id] = (key, idx)
        group.cells.pop()
        group.slots.pop()
        # Detach the removed cell from the pool (give it its own copy).
        cell.vertices = np.array(cell.vertices)
        self._generation += 1
        get_telemetry().inc("cells.removed")
        return cell

    def remove_where(self, predicate) -> list[Cell]:
        """Remove every cell for which ``predicate(cell)`` is true.

        The predicate pass iterates the groups directly, so it does not
        pay the O(n) combined-list rebuild of the ``cells`` property.
        """
        doomed = [
            c.global_id
            for g in self._groups.values()
            for c in g.cells
            if predicate(c)
        ]
        return [self.remove(gid) for gid in doomed]

    def _rebind(self, group: _Group) -> None:
        """Refresh cell vertex views after a pool growth reallocated storage."""
        for cell, slot in zip(group.cells, group.slots):
            cell.vertices = group.pool.view(slot)
        group.last_grow_events = group.pool.grow_events

    # -- packed storage ------------------------------------------------------
    def _packed_cache(self) -> _PackedCache:
        """Packed-layout metadata, rebuilt only when the generation bumps."""
        p = self._packed
        if p is not None and p.generation == self._generation:
            return p
        p = _PackedCache(self._generation)
        ordinals = []
        start = 0
        for group in self._groups.values():
            if not group.cells:
                continue
            n_cells_before = len(p.cells)
            b, v = len(group.cells), group.pool.n_vertices
            stop = start + b * v
            p.segments.append(
                (group, np.asarray(group.slots, dtype=np.intp), start, stop)
            )
            ordinals.append(
                np.repeat(np.arange(n_cells_before, n_cells_before + b), v)
            )
            p.cells.extend(group.cells)
            start = stop
        if ordinals:
            p.ordinals = np.concatenate(ordinals).astype(np.int64)
        p.verts = np.empty((start, 3), dtype=np.float64)
        p.forces = np.empty((start, 3), dtype=np.float64)
        counts = np.array([len(c.vertices) for c in p.cells], dtype=np.intp)
        p.splits = np.cumsum(counts)[:-1] if len(counts) else counts
        self._packed = p
        return p

    def _refresh_packed_vertices(self) -> _PackedCache:
        """Gather current pool contents into the persistent packed array."""
        p = self._packed_cache()
        for group, slots, start, stop in p.segments:
            group.pool.gather(
                slots, out=p.verts[start:stop].reshape(len(slots), -1, 3)
            )
        return p

    # -- bulk geometry -------------------------------------------------------
    def packed_vertices(self) -> tuple[np.ndarray, np.ndarray, list[Cell]]:
        """Persistent packed vertex array, per-vertex ordinal, cell list.

        Same ordering contract as :meth:`all_vertices`, but the returned
        arrays are *owned by the manager*: they are refreshed in place on
        the next call and must be treated as read-only snapshots.  This is
        the per-step hot path used by the FSI stepper.
        """
        p = self._refresh_packed_vertices()
        return p.verts, p.ordinals, p.cells

    def packed_arrays(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, list[Cell]]:
        """Refreshed packed vertices, force buffer, ordinals, cell list.

        The force buffer's contents are whatever the last force pass left
        there; callers overwrite it.  Same manager-owned snapshot contract
        as :meth:`packed_vertices`.  This is the entry point the parallel
        FSI runtime shards over.
        """
        p = self._refresh_packed_vertices()
        return p.verts, p.forces, p.ordinals, p.cells

    def packed_segments(self):
        """Yield ``(reference, sample cell, start row, n_cells, n_vertices)``
        for every packed group segment (packed order).

        ``start row`` is the segment's first row in the packed arrays;
        cell ``c`` of the segment owns rows ``start + c*n_vertices``
        onward.  The sample cell carries the group's shared moduli.
        """
        p = self._packed_cache()
        for group, slots, start, _stop in p.segments:
            yield (group.reference, group.cells[0], start,
                   len(group.cells), group.pool.n_vertices)

    def vertex_subgrid(self, cell_size: float) -> "UniformSubgrid":
        """Persistent vertex subgrid labeled by owning global ID.

        Cached against ``(generation, position_version, cell_size)`` so
        repeated hematocrit-maintenance passes over an unchanged
        population reuse one build.  Callers may ``insert`` additional
        points (tile stamping does); membership changes bump the
        generation, which invalidates the cache on the next call.
        """
        from .subgrid import UniformSubgrid  # deferred: import cycle safety

        key = (self._generation, self._position_version, float(cell_size))
        if self._subgrid is not None and self._subgrid_key == key:
            return self._subgrid
        sg = UniformSubgrid(cell_size=cell_size, kernels=self.kernels)
        p = self._refresh_packed_vertices()
        if p.cells:
            gids = np.fromiter(
                (c.global_id for c in p.cells), dtype=np.int64,
                count=len(p.cells),
            )
            sg.insert(p.verts, gids[p.ordinals])
        self._subgrid = sg
        self._subgrid_key = key
        return sg

    def all_vertices(self) -> tuple[np.ndarray, np.ndarray, list[Cell]]:
        """All vertices stacked (N, 3), per-vertex cell ordinal, cell list.

        Ordering is deterministic: groups in insertion order, cells in
        group order; the ordinal indexes into the returned cell list.
        The vertex array is a fresh copy (see :meth:`packed_vertices`
        for the zero-copy variant).
        """
        p = self._packed_cache()
        if not p.cells:
            return np.empty((0, 3)), np.empty(0, dtype=np.int64), []
        verts = np.empty_like(p.verts)
        for group, slots, start, stop in p.segments:
            group.pool.gather(
                slots, out=verts[start:stop].reshape(len(slots), -1, 3)
            )
        return verts, p.ordinals, list(p.cells)

    def centroids(self) -> np.ndarray:
        p = self._refresh_packed_vertices()
        if not p.cells:
            return np.empty((0, 3))
        starts = np.concatenate(([0], p.splits)).astype(np.intp)
        sums = np.add.reduceat(p.verts, starts, axis=0)
        counts = np.diff(np.concatenate((starts, [len(p.verts)])))
        return sums / counts[:, None]

    # -- mechanics -----------------------------------------------------------
    def _group_membrane_forces(self, group: _Group, slots: np.ndarray) -> np.ndarray:
        """Batched membrane forces (B, V, 3) for one group."""
        ref = group.reference
        sample = group.cells[0]
        batch = group.pool.gather(slots)
        f = self._kt["skalak_forces"](
            batch, ref, sample.shear_modulus, sample.skalak_C
        )
        f += self._kt["bending_forces"](batch, ref.quads, ref.theta0, sample.k_bend)
        f += self._kt["area_volume_forces"](
            batch, ref.faces, ref.area0, ref.volume0,
            sample.k_area, sample.k_volume,
        )
        return f

    def membrane_force_batches(self):
        """Yield ``(cells, (B, V, 3) forces)`` per group, packed order.

        This is the no-dict-hop path: each group's batched force array is
        produced once and consumed group-wise, without splitting it into
        per-cell dictionary entries.
        """
        p = self._packed_cache()
        for group, slots, _, _ in p.segments:
            yield group.cells, self._group_membrane_forces(group, slots)

    def membrane_forces(self) -> dict[int, np.ndarray]:
        """Batched membrane forces for every cell, keyed by global ID [N]."""
        out: dict[int, np.ndarray] = {}
        for cells, f in self.membrane_force_batches():
            for cell, fi in zip(cells, f):
                out[cell.global_id] = fi
        return out

    def total_forces(self) -> tuple[np.ndarray, np.ndarray, list[Cell]]:
        """Membrane + contact forces aligned with :meth:`all_vertices`.

        Returns the manager-owned packed force and vertex arrays (see
        :meth:`packed_vertices` for the ownership contract).
        """
        from .contact import contact_forces  # deferred: scipy import cost

        p = self._refresh_packed_vertices()
        if not p.cells:
            return np.empty((0, 3)), p.verts, []
        for group, slots, start, stop in p.segments:
            f = self._group_membrane_forces(group, slots)
            p.forces[start:stop] = f.reshape(-1, 3)
        p.forces += contact_forces(
            p.verts, p.ordinals, self.contact_cutoff, self.contact_stiffness,
            table=self._kt,
        )
        return p.forces, p.verts, p.cells

    def update_vertices(self, displacements: np.ndarray) -> None:
        """Advect all vertices by stacked displacements (same ordering)."""
        p = self._packed_cache()
        if len(displacements) != p.verts.shape[0]:
            raise ValueError("displacement array does not match vertex count")
        for group, slots, start, stop in p.segments:
            group.pool.scatter_add(
                slots, displacements[start:stop].reshape(len(slots), -1, 3)
            )
        self._position_version += 1

    def set_velocities(self, velocities: np.ndarray) -> None:
        """Assign per-vertex velocities (packed ordering) onto the cells.

        Cells receive ``np.split`` views into ``velocities``; the caller
        must hand over ownership of the array (the stepper passes a fresh
        physical-velocity array every step).
        """
        p = self._packed_cache()
        if len(velocities) != p.verts.shape[0]:
            raise ValueError("velocity array does not match vertex count")
        if not p.cells:
            return
        for cell, v in zip(p.cells, np.split(velocities, p.splits)):
            cell.velocities = v
