"""Cell population management with pooled storage and batched mechanics.

:class:`CellManager` owns every cell in one simulation region.  Cells are
grouped by (mesh topology, mechanical moduli); each group's vertices live
in a :class:`~repro.fsi.pool.VertexPool` so membrane forces for the whole
group evaluate as one batched array operation — the Python counterpart of
the paper's pooled GPU cell buffers (Section 2.4.5).

Global IDs are allocated monotonically by the manager and never reused,
which the deterministic overlap-removal rule (Section 2.4.2) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..membrane.bending import bending_forces
from ..membrane.cell import Cell, CellKind
from ..membrane.constraints import area_volume_forces
from ..membrane.skalak import skalak_forces
from ..telemetry import get_telemetry
from .pool import VertexPool


def _group_key(cell: Cell) -> tuple:
    return (
        id(cell.reference),
        cell.shear_modulus,
        cell.skalak_C,
        cell.bending_modulus,
        cell.k_area,
        cell.k_volume,
    )


@dataclass
class _Group:
    reference: object
    pool: VertexPool
    cells: list[Cell] = field(default_factory=list)
    slots: list[int] = field(default_factory=list)
    last_grow_events: int = 0


class CellManager:
    """Container for all cells in a region, with batched force evaluation."""

    def __init__(self, contact_cutoff: float = 0.5e-6, contact_stiffness: float = 2.0e-10):
        self._groups: dict[tuple, _Group] = {}
        self._by_id: dict[int, tuple[tuple, int]] = {}  # id -> (group key, idx)
        self._next_id = 0
        self.contact_cutoff = contact_cutoff
        self.contact_stiffness = contact_stiffness

    # -- id allocation ------------------------------------------------------
    def allocate_id(self) -> int:
        gid = self._next_id
        self._next_id += 1
        return gid

    def reserve_ids(self, count: int) -> range:
        """Reserve a contiguous block of IDs (used by tile stamping)."""
        start = self._next_id
        self._next_id += count
        return range(start, start + count)

    # -- membership ---------------------------------------------------------
    @property
    def cells(self) -> list[Cell]:
        out: list[Cell] = []
        for g in self._groups.values():
            out.extend(g.cells)
        return out

    @property
    def n_cells(self) -> int:
        return sum(len(g.cells) for g in self._groups.values())

    def __contains__(self, global_id: int) -> bool:
        return global_id in self._by_id

    def get(self, global_id: int) -> Cell:
        key, idx = self._by_id[global_id]
        return self._groups[key].cells[idx]

    def add(self, cell: Cell) -> Cell:
        """Insert a cell; its vertices are rebound into pooled storage."""
        if cell.global_id in self._by_id:
            raise ValueError(f"duplicate global id {cell.global_id}")
        if cell.global_id >= self._next_id:
            self._next_id = cell.global_id + 1
        key = _group_key(cell)
        group = self._groups.get(key)
        if group is None:
            group = _Group(
                reference=cell.reference,
                pool=VertexPool(cell.reference.n_vertices),
            )
            self._groups[key] = group
        slot = group.pool.acquire(cell.vertices)
        if group.pool.grow_events != group.last_grow_events:
            self._rebind(group)
            get_telemetry().inc("cells.pool_grows")
        cell.vertices = group.pool.view(slot)
        group.cells.append(cell)
        group.slots.append(slot)
        self._by_id[cell.global_id] = (key, len(group.cells) - 1)
        get_telemetry().inc("cells.inserted")
        return cell

    def remove(self, global_id: int) -> Cell:
        """Remove a cell by global ID; its pool slot is recycled."""
        key, idx = self._by_id.pop(global_id)
        group = self._groups[key]
        cell = group.cells[idx]
        group.pool.release(group.slots[idx])
        # Swap-remove keeps lists compact; fix the moved cell's index.
        last = len(group.cells) - 1
        if idx != last:
            group.cells[idx] = group.cells[last]
            group.slots[idx] = group.slots[last]
            self._by_id[group.cells[idx].global_id] = (key, idx)
        group.cells.pop()
        group.slots.pop()
        # Detach the removed cell from the pool (give it its own copy).
        cell.vertices = np.array(cell.vertices)
        get_telemetry().inc("cells.removed")
        return cell

    def remove_where(self, predicate) -> list[Cell]:
        """Remove every cell for which ``predicate(cell)`` is true."""
        doomed = [c.global_id for c in self.cells if predicate(c)]
        return [self.remove(gid) for gid in doomed]

    def _rebind(self, group: _Group) -> None:
        """Refresh cell vertex views after a pool growth reallocated storage."""
        for cell, slot in zip(group.cells, group.slots):
            cell.vertices = group.pool.view(slot)
        group.last_grow_events = group.pool.grow_events

    # -- bulk geometry -------------------------------------------------------
    def all_vertices(self) -> tuple[np.ndarray, np.ndarray, list[Cell]]:
        """All vertices stacked (N, 3), per-vertex cell ordinal, cell list.

        Ordering is deterministic: groups in insertion order, cells in
        group order; the ordinal indexes into the returned cell list.
        """
        chunks = []
        ordinals = []
        cells: list[Cell] = []
        for group in self._groups.values():
            for cell in group.cells:
                chunks.append(cell.vertices)
                ordinals.append(np.full(len(cell.vertices), len(cells)))
                cells.append(cell)
        if not chunks:
            return np.empty((0, 3)), np.empty(0, dtype=np.int64), []
        return np.vstack(chunks), np.concatenate(ordinals).astype(np.int64), cells

    def centroids(self) -> np.ndarray:
        cells = self.cells
        if not cells:
            return np.empty((0, 3))
        return np.array([c.centroid() for c in cells])

    # -- mechanics -----------------------------------------------------------
    def membrane_forces(self) -> dict[int, np.ndarray]:
        """Batched membrane forces for every cell, keyed by global ID [N]."""
        out: dict[int, np.ndarray] = {}
        for group in self._groups.values():
            if not group.cells:
                continue
            ref = group.reference
            sample = group.cells[0]
            batch = group.pool.batch(group.slots)  # (B, V, 3)
            f = skalak_forces(batch, ref, sample.shear_modulus, sample.skalak_C)
            f += bending_forces(batch, ref.quads, ref.theta0, sample.k_bend)
            f += area_volume_forces(
                batch, ref.faces, ref.area0, ref.volume0,
                sample.k_area, sample.k_volume,
            )
            for cell, fi in zip(group.cells, f):
                out[cell.global_id] = fi
        return out

    def total_forces(self) -> tuple[np.ndarray, np.ndarray, list[Cell]]:
        """Membrane + contact forces aligned with :meth:`all_vertices`."""
        from .contact import contact_forces  # deferred: scipy import cost

        verts, ordinals, cells = self.all_vertices()
        if len(cells) == 0:
            return np.empty((0, 3)), verts, cells
        membrane = self.membrane_forces()
        forces = np.vstack([membrane[c.global_id] for c in cells])
        forces += contact_forces(
            verts, ordinals, self.contact_cutoff, self.contact_stiffness
        )
        return forces, verts, cells

    def update_vertices(self, displacements: np.ndarray) -> None:
        """Advect all vertices by stacked displacements (same ordering)."""
        offset = 0
        for group in self._groups.values():
            for cell in group.cells:
                nv = len(cell.vertices)
                cell.vertices += displacements[offset : offset + nv]
                offset += nv
        if offset != len(displacements):
            raise ValueError("displacement array does not match vertex count")
