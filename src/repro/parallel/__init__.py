"""Parallel LBM runtime (in-process stand-in for Summit's MPI execution).

The paper runs HARVEY on Summit with 42 MPI tasks per node (36 CPU bulk
tasks + 6 GPU window tasks).  This package reproduces the *parallel
structure* and — since the executor backends landed — actually executes
it: a block domain decomposition with D3Q19 halo handling, a distributed
LBM solver that is bit-identical to the single-grid solver and steps its
ranks concurrently under a ``serial`` | ``threads`` | ``processes``
executor (persistent shared-memory worker pool), per-task byte/message
accounting, the paper's halo *recompute* mode, and the CPU/GPU
task-mapping rules.  Measured communication volumes and wall-clock
throughput feed the scaling analysis of :mod:`repro.perfmodel`
(Figs. 7-8); see ``docs/parallel_and_models.md``.
"""

from .decomposition import BlockDecomposition, balanced_dims
from .halo import CommCounters, HaloAccountant, fill_rank_halo
from .executor import (
    BACKENDS,
    ProcessExecutor,
    RankBlocks,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_backend,
)
from .distributed import HALO_MODES, DistributedLBMSolver
from .fsi import FSI_PHASES, ParallelFSIRuntime, resolve_fsi_backend
from .measure import (
    measure_throughput,
    measured_scaling_curve,
    measured_weak_scaling,
)
from .taskmap import TaskMap, summit_task_map

__all__ = [
    "BACKENDS",
    "HALO_MODES",
    "BlockDecomposition",
    "balanced_dims",
    "CommCounters",
    "HaloAccountant",
    "fill_rank_halo",
    "RankBlocks",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_backend",
    "DistributedLBMSolver",
    "FSI_PHASES",
    "ParallelFSIRuntime",
    "resolve_fsi_backend",
    "measure_throughput",
    "measured_scaling_curve",
    "measured_weak_scaling",
    "TaskMap",
    "summit_task_map",
]
