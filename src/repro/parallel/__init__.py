"""Parallel LBM runtime (in-process stand-in for Summit's MPI execution).

The paper runs HARVEY on Summit with 42 MPI tasks per node (36 CPU bulk
tasks + 6 GPU window tasks).  This package reproduces the *parallel
structure* and — since the executor backends landed — actually executes
it: a block domain decomposition with D3Q19 halo handling (optionally
direction-aware packed and fluid-weighted), a distributed LBM solver
that is bit-identical to the single-grid solver and steps its ranks
concurrently under a ``serial`` | ``threads`` | ``processes`` executor
(persistent shared-memory worker pool) in a barriered or fused
single-round-trip pipeline, per-task byte/message/slab accounting, the
paper's halo *recompute* mode, and the CPU/GPU task-mapping rules.
Measured communication volumes and wall-clock throughput feed the
scaling analysis of :mod:`repro.perfmodel` (Figs. 7-8); see
``docs/parallel_and_models.md`` and ``docs/performance.md``.
"""

from .decomposition import BlockDecomposition, balanced_dims, weighted_splits
from .halo import PACKED_QS, CommCounters, HaloAccountant, fill_rank_halo
from .executor import (
    BACKENDS,
    STEP_SUBPHASES,
    ProcessExecutor,
    RankBlocks,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_backend,
)
from .distributed import (
    HALO_MODES,
    DistributedLBMSolver,
    resolve_dist_overlap,
    resolve_halo_pack,
)
from .fsi import FSI_PHASES, ParallelFSIRuntime, resolve_fsi_backend
from .measure import (
    halo_pack_comparison,
    measure_throughput,
    measured_scaling_curve,
    measured_weak_scaling,
    overlap_comparison,
)
from .taskmap import TaskMap, summit_task_map

__all__ = [
    "BACKENDS",
    "HALO_MODES",
    "STEP_SUBPHASES",
    "PACKED_QS",
    "BlockDecomposition",
    "balanced_dims",
    "weighted_splits",
    "CommCounters",
    "HaloAccountant",
    "fill_rank_halo",
    "RankBlocks",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "make_executor",
    "resolve_backend",
    "DistributedLBMSolver",
    "resolve_halo_pack",
    "resolve_dist_overlap",
    "FSI_PHASES",
    "ParallelFSIRuntime",
    "resolve_fsi_backend",
    "measure_throughput",
    "measured_scaling_curve",
    "measured_weak_scaling",
    "halo_pack_comparison",
    "overlap_comparison",
    "TaskMap",
    "summit_task_map",
]
