"""Virtual parallel runtime (substitute for Summit's MPI execution).

The paper runs HARVEY on Summit with 42 MPI tasks per node (36 CPU bulk
tasks + 6 GPU window tasks).  This package reproduces the *parallel
structure* in-process: a block domain decomposition with D3Q19 halo
exchange, a distributed LBM solver that is bit-identical to the
single-grid solver, per-task byte/message accounting, and the CPU/GPU
task-mapping rules — the measured communication volumes feed the scaling
model of :mod:`repro.perfmodel` (Figs. 7-8).
"""

from .decomposition import BlockDecomposition, balanced_dims
from .halo import HaloAccountant
from .distributed import DistributedLBMSolver
from .taskmap import TaskMap, summit_task_map

__all__ = [
    "BlockDecomposition",
    "balanced_dims",
    "HaloAccountant",
    "DistributedLBMSolver",
    "TaskMap",
    "summit_task_map",
]
