"""Executor-backed runtime for the cell-laden FSI step.

The window task's hot loop is the :class:`~repro.fsi.stepper.FSIStepper`
sequence — membrane forces, IBM spread, collide/stream, IBM interpolate —
and all of it except collide/stream is embarrassingly parallel over cells
or markers.  This module shards those phases across the same
``serial`` | ``threads`` | ``processes`` backends the distributed LBM
solver uses (:mod:`repro.parallel.executor`), with one extra constraint
the LBM phases never had: every backend must be **bitwise identical** to
the serial step, because the golden-trajectory tests pin the stepper to a
literal reference implementation.

Sharding scheme (each stage is race-free and order-preserving):

* ``forces``  — membrane force kernels are per-cell independent with a
  fixed within-cell reduction order, so chunking group slots across
  workers and writing disjoint packed rows reproduces the serial batch
  evaluation exactly.
* ``stencil`` — kernel weights are per-marker elementwise work; each
  worker builds the :class:`~repro.ibm.coupling.Stencil` for a contiguous
  marker chunk and publishes its flattened node indices.
* ``spread``  — runs in two barriered stages.  Stage one multiplies
  weights by marker forces per marker chunk (elementwise, exact).  Stage
  two shards the *scatter* by disjoint lattice-node ranges: each worker
  masks the full flat-index array for its range and ``bincount``-reduces
  into its own slice of the force field.  ``np.bincount`` sums weights in
  position order, and masking preserves that order per node, so the
  result is bit-for-bit the single full bincount of the serial path —
  per-worker partial accumulators summed across workers would not be
  (floating-point association differs at chunk-straddling nodes), which
  is why the reduction is sharded by output node instead of by marker.
* ``interp``  — the velocity einsum reduces over the kernel support per
  marker, independent of how markers are chunked.

For the ``processes`` backend the packed vertex/force arrays, flat
indices, spread contributions and the Eulerian field all live in
:mod:`multiprocessing.shared_memory` segments refreshed when the
:class:`~repro.fsi.cell_manager.CellManager` generation changes; workers
attach by name and never ship array data over the command pipe.  Segment
lifetime matches the PR 3 executor guarantees: explicit :meth:`close`,
with a GC finalizer as the safety net.
"""

from __future__ import annotations

import os
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from ..ibm.coupling import make_stencil
from ..ibm.kernels import KERNELS, DeltaKernel
from ..kernels import get_kernel_table, resolve_kernels
from ..telemetry import get_telemetry
from .executor import BACKENDS, _shutdown_workers, _unlink_segments

#: Parallel FSI phases, in per-step execution order.
FSI_PHASES = ("forces", "stencil", "contrib", "scatter", "interp")


def resolve_fsi_backend(
    backend: str | None, n_workers: int | None
) -> tuple[str, int]:
    """Resolve the FSI backend/worker-count against env and hardware.

    Same contract as :func:`repro.parallel.executor.resolve_backend`
    (``REPRO_PARALLEL_BACKEND`` / ``REPRO_PARALLEL_WORKERS`` fallbacks)
    but without a rank-count cap: the FSI step shards cells and markers,
    whose counts change at runtime, so the worker count is capped only by
    the CPU count.
    """
    if backend is None:
        backend = os.environ.get("REPRO_PARALLEL_BACKEND", "serial")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; pick one of {BACKENDS}")
    if n_workers is None:
        env = os.environ.get("REPRO_PARALLEL_WORKERS")
        n_workers = int(env) if env else (os.cpu_count() or 1)
    n_workers = max(1, int(n_workers))
    if backend == "serial":
        n_workers = 1
    return backend, n_workers


# ----------------------------------------------------------------------
# Work decomposition


@dataclass(frozen=True)
class GroupSpec:
    """Picklable description of one packed cell-group segment.

    Mirrors the ``(group, slots, start, stop)`` segments of the packed
    cache: ``start`` is the segment's first packed vertex row, and cell
    ``c`` of the group owns rows ``start + c*n_vertices`` onward.  The
    :class:`~repro.membrane.reference.ReferenceState` is a frozen bundle
    of ndarrays shared by every cell of the group.
    """

    start: int
    n_cells: int
    n_vertices: int
    reference: object
    shear_modulus: float
    skalak_C: float
    k_bend: float
    k_area: float
    k_volume: float


def _split_range(n: int, k: int) -> list[tuple[int, int]]:
    """``k`` contiguous near-even half-open chunks of ``range(n)``."""
    base, extra = divmod(n, k)
    out = []
    start = 0
    for w in range(k):
        size = base + (1 if w < extra else 0)
        out.append((start, start + size))
        start += size
    return out


def _cell_chunks(
    specs: list[GroupSpec], n_workers: int
) -> list[list[tuple[int, int, int]]]:
    """Per-worker ``(spec index, first cell, last cell)`` task lists.

    Cells are flattened across segments and split into contiguous
    near-even runs so workers stay balanced even when one group holds
    most of the population.
    """
    total = sum(s.n_cells for s in specs)
    tasks: list[list[tuple[int, int, int]]] = [[] for _ in range(n_workers)]
    if total == 0:
        return tasks
    bounds = _split_range(total, n_workers)
    offset = 0  # flat cell ordinal of the current segment's first cell
    for si, spec in enumerate(specs):
        for w, (lo, hi) in enumerate(bounds):
            c0 = max(lo, offset) - offset
            c1 = min(hi, offset + spec.n_cells) - offset
            if c1 > c0:
                tasks[w].append((si, c0, c1))
        offset += spec.n_cells
    return tasks


# ----------------------------------------------------------------------
# The per-worker compute core (shared by every backend)


class FSIWorker:
    """Executes the sharded FSI stages for one worker's chunk.

    The same object runs inline (serial), inside a thread pool (threads)
    and inside a child process bound to shared-memory arrays (processes);
    the arrays it reads and writes are handed in per call, so the class
    itself holds only the decomposition and the cached marker stencil.
    """

    def __init__(self, kernel: DeltaKernel | str, mode: str,
                 grid_shape: tuple[int, int, int],
                 origin: np.ndarray, spacing: float,
                 kernels: str | None = None):
        self.kernel = KERNELS[kernel] if isinstance(kernel, str) else kernel
        self.mode = mode
        self.grid_shape = tuple(grid_shape)
        self.origin = np.asarray(origin, dtype=np.float64)
        self.spacing = float(spacing)
        self.kernels = resolve_kernels(kernels)
        self._kt = get_kernel_table(self.kernels)
        self.force_tasks: list[tuple[GroupSpec, int, int]] = []
        self.marker_range = (0, 0)
        self.node_range = (0, 0)
        self._stencil = None
        self._w_buf: np.ndarray | None = None

    def set_population(
        self,
        specs: list[GroupSpec],
        force_tasks: list[tuple[int, int, int]],
        marker_range: tuple[int, int],
        node_range: tuple[int, int],
    ) -> None:
        self.force_tasks = [(specs[si], c0, c1) for si, c0, c1 in force_tasks]
        self.marker_range = tuple(marker_range)
        self.node_range = tuple(node_range)
        self._stencil = None
        self._w_buf = None

    # -- stage kernels -------------------------------------------------
    def membrane_forces(self, verts: np.ndarray, out: np.ndarray) -> None:
        """Evaluate membrane forces for this worker's cell chunks.

        Writes disjoint packed rows of ``out``; per-cell arithmetic is
        identical to ``CellManager._group_membrane_forces`` (the packed
        vertex rows are bitwise copies of the pool gather it uses).
        """
        skalak = self._kt["skalak_forces"]
        bending = self._kt["bending_forces"]
        area_volume = self._kt["area_volume_forces"]
        for spec, c0, c1 in self.force_tasks:
            ref = spec.reference
            lo = spec.start + c0 * spec.n_vertices
            hi = spec.start + c1 * spec.n_vertices
            batch = verts[lo:hi].reshape(c1 - c0, spec.n_vertices, 3)
            f = skalak(batch, ref, spec.shear_modulus, spec.skalak_C)
            f += bending(batch, ref.quads, ref.theta0, spec.k_bend)
            f += area_volume(
                batch, ref.faces, ref.area0, ref.volume0,
                spec.k_area, spec.k_volume,
            )
            out[lo:hi] = f.reshape(-1, 3)

    def build_stencil(self, verts: np.ndarray, flat_out: np.ndarray) -> int:
        """Build the stencil for this worker's marker chunk.

        Publishes the chunk's flattened node indices into ``flat_out``
        (the scatter stage reads the *full* array) and returns the number
        of boundary-clipped markers in the chunk.
        """
        m0, m1 = self.marker_range
        if m1 <= m0:
            self._stencil = None
            return 0
        frac = (verts[m0:m1] - self.origin) / self.spacing
        n, s = m1 - m0, self.kernel.support
        if self._w_buf is None or self._w_buf.shape[0] != n:
            self._w_buf = np.empty((n, s, s, s), dtype=np.float64)
        st = make_stencil(frac, self.grid_shape, self.kernel, self.mode,
                          w_out=self._w_buf)
        s3 = s ** 3
        flat_out[m0 * s3:m1 * s3] = st.flat_indices()
        self._stencil = st
        return st.n_clipped

    def spread_contrib(self, forces_lat: np.ndarray,
                       contrib_out: np.ndarray) -> None:
        """Stage one of the spread: weights x forces per marker chunk."""
        m0, m1 = self.marker_range
        st = self._stencil
        if st is None or m1 <= m0:
            return
        s3 = self.kernel.support ** 3
        self._kt["ibm_spread_contrib"](
            st.w, forces_lat[m0:m1], contrib_out[:, m0 * s3:m1 * s3]
        )

    def spread_scatter(self, flat: np.ndarray, contrib: np.ndarray,
                       field_flat: np.ndarray) -> None:
        """Stage two of the spread: reduce this worker's node range.

        Every backend's scatter kernel accumulates per node in ascending
        flat-index position order (the bincount order), so the sharded
        scatter stays bitwise equal to the serial spread under the numpy
        backend and within the documented 1e-12 otherwise.
        """
        lo, hi = self.node_range
        if hi <= lo:
            return
        self._kt["ibm_spread_scatter"](flat, contrib, field_flat, lo, hi)

    def interpolate(self, field: np.ndarray, out: np.ndarray) -> None:
        """Interpolate the field at this worker's marker chunk."""
        m0, m1 = self.marker_range
        if self._stencil is None or m1 <= m0:
            return
        out[m0:m1] = self._kt["ibm_interp"](field, self._stencil)


# ----------------------------------------------------------------------
# Process-backend worker loop


def _attach_arrays(
    segments: dict[str, shared_memory.SharedMemory],
    n_markers: int,
    s3: int,
    grid_shape: tuple[int, int, int],
) -> dict[str, np.ndarray]:
    return {
        "verts": np.ndarray((n_markers, 3), np.float64,
                            buffer=segments["verts"].buf),
        "io": np.ndarray((n_markers, 3), np.float64,
                         buffer=segments["io"].buf),
        "flat": np.ndarray((n_markers * s3,), np.int64,
                           buffer=segments["flat"].buf),
        "contrib": np.ndarray((3, n_markers * s3), np.float64,
                              buffer=segments["contrib"].buf),
        "field": np.ndarray((3,) + tuple(grid_shape), np.float64,
                            buffer=segments["field"].buf),
    }


def _fsi_worker_main(conn, kernel_name, mode, grid_shape, origin,
                     spacing, kernels=None) -> None:
    """Process-backend worker loop: attach segments, serve stage commands.

    The parent acts as the barrier between stages by collecting every
    worker's reply before issuing the next command; array data never
    crosses the pipe (it lives in the shared segments).  ``kernels`` is
    the parent's resolved kernels-backend name (the child re-resolves it
    so a numba-less child falls back to NumPy instead of dying).

    Stage replies travel as ``(payload, t0, t1)`` with the interval
    stamped on ``time.perf_counter`` — system-wide ``CLOCK_MONOTONIC``
    on Linux — so the parent can fold per-worker seconds into the
    rank-balance rollup and, under tracing, merge the intervals into
    the driver's span timeline.
    """
    from time import perf_counter

    worker = FSIWorker(kernel_name, mode, grid_shape, origin, spacing,
                       kernels=kernels)
    segments: dict[str, shared_memory.SharedMemory] = {}
    arrays: dict[str, np.ndarray] = {}
    try:
        while True:
            msg = conn.recv()
            # _shutdown_workers sends the bare "stop" string; stage
            # commands arrive as tuples.
            cmd = msg if isinstance(msg, str) else msg[0]
            if cmd == "stop":
                break
            if cmd == "population":
                _, specs, tasks, m_range, n_range, n_markers, names = msg
                arrays.clear()  # views must die before segment close
                for shm in segments.values():
                    shm.close()
                segments = {
                    key: shared_memory.SharedMemory(name=name)
                    for key, name in names.items()
                }
                arrays = _attach_arrays(
                    segments, n_markers, worker.kernel.support ** 3,
                    grid_shape,
                )
                worker.set_population(specs, tasks, m_range, n_range)
                conn.send("ok")
                continue
            t0 = perf_counter()
            if cmd == "forces":
                worker.membrane_forces(arrays["verts"], arrays["io"])
                payload = "ok"
            elif cmd == "stencil":
                payload = worker.build_stencil(
                    arrays["verts"], arrays["flat"]
                )
            elif cmd == "contrib":
                worker.spread_contrib(arrays["io"], arrays["contrib"])
                payload = "ok"
            elif cmd == "scatter":
                worker.spread_scatter(
                    arrays["flat"], arrays["contrib"],
                    arrays["field"].reshape(3, -1),
                )
                payload = "ok"
            elif cmd == "interp":
                worker.interpolate(arrays["field"], arrays["io"])
                payload = "ok"
            else:
                raise ValueError(f"unknown FSI worker command {cmd!r}")
            conn.send((payload, t0, perf_counter()))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        arrays.clear()
        for shm in segments.values():
            shm.close()
        conn.close()


def _timed_call(fn, args) -> tuple:
    """Run ``fn(*args)`` stamping its wall interval (in-process paths)."""
    from time import perf_counter

    t0 = perf_counter()
    reply = fn(*args)
    return reply, t0, perf_counter()


def _finalize_runtime(procs, conns, segments) -> None:
    """GC safety net: stop workers, then unlink shared segments."""
    if procs:
        _shutdown_workers(procs, conns)
        procs.clear()
        conns.clear()
    _unlink_segments(segments)
    segments.clear()


# ----------------------------------------------------------------------
# The runtime facade


class ParallelFSIRuntime:
    """Sharded membrane-force + IBM coupling engine for one lattice.

    Owned by an :class:`~repro.fsi.stepper.FSIStepper`; every backend —
    including ``serial`` — routes through it, and every backend is
    bitwise identical to the pre-runtime serial stepper (see the module
    docstring for the determinism argument).

    Call order per step::

        total_forces(manager)   # fsi/forces (+ serial contact pass)
        begin_step(verts)       # fsi/stencil, once per marker position
        spread(forces_lat, F)   # fsi/spread (two barriered stages)
        interpolate(u)          # fsi/interp (reuses the cached stencil)
        end_step()

    ``sync_population`` is generation-keyed: shared-memory segments and
    the cell/marker/node decomposition refresh only when the population
    changes.
    """

    def __init__(
        self,
        grid,
        kernel: DeltaKernel | str = "cosine4",
        mode: str = "clip",
        backend: str | None = None,
        n_workers: int | None = None,
        kernels: str | None = None,
    ):
        self.backend, self.n_workers = resolve_fsi_backend(backend, n_workers)
        self.kernels = resolve_kernels(kernels)
        self._kt = get_kernel_table(self.kernels)
        self.kernel = KERNELS[kernel] if isinstance(kernel, str) else kernel
        if self.backend == "processes" and self.kernel.name not in KERNELS:
            # Worker processes rebuild the kernel by name (callables may
            # not survive pickling under the spawn start method).
            raise ValueError(
                f"processes backend needs a registered kernel, got "
                f"{self.kernel.name!r}"
            )
        self.mode = mode
        self.grid = grid
        self.grid_shape = tuple(grid.shape)
        self.grid_size = int(np.prod(self.grid_shape))
        self.origin = np.asarray(grid.origin, dtype=np.float64).copy()
        self.spacing = float(grid.spacing)
        self._generation = -1
        self._n_markers = 0
        self._specs: list[GroupSpec] = []
        self._stencil_valid = False
        self._closed = False

        # In-process workers (serial/threads) and their plain buffers.
        self._workers: list[FSIWorker] = []
        self._pool: ThreadPoolExecutor | None = None
        self._flat_buf: np.ndarray | None = None
        self._contrib_buf: np.ndarray | None = None

        # Process backend: persistent worker pool + shared segments.
        self._procs: list = []
        self._conns: list = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._shm_names: dict[str, str] = {}
        self._shm_arrays: dict[str, np.ndarray] = {}
        self._warned_clip = False

        if self.backend == "processes":
            self._start_processes()
        else:
            self._workers = [
                FSIWorker(self.kernel, mode, self.grid_shape,
                          self.origin, self.spacing, kernels=self.kernels)
                for _ in range(self.n_workers)
            ]
            if self.backend == "threads":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.n_workers,
                    thread_name_prefix="repro-fsi",
                )
        self._finalizer = weakref.finalize(
            self, _finalize_runtime, self._procs, self._conns, self._segments
        )
        if self._pool is not None:
            self._pool_finalizer = weakref.finalize(
                self, self._pool.shutdown, False
            )

    # -- lifecycle -----------------------------------------------------
    def _start_processes(self) -> None:
        # Unlike the LBM executor, segments are created *after* the pool
        # (their size tracks the cell population), so the parent tracker
        # must already be running when workers fork — otherwise each
        # child's attach-time register spawns a private tracker that
        # never sees the parent's unlink and warns about leaks at exit.
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        for w in range(self.n_workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_fsi_worker_main,
                args=(child_conn, self.kernel.name, self.mode,
                      self.grid_shape, self.origin, self.spacing,
                      self.kernels),
                daemon=True,
                name=f"repro-fsi-{w}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def close(self) -> None:
        """Stop workers and unlink shared segments (idempotent)."""
        self._closed = True
        self._shm_arrays.clear()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool_finalizer.detach()
            self._pool = None
        self._finalizer()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    # -- population sync -----------------------------------------------
    def sync_population(self, manager) -> None:
        """Refresh the decomposition when the cell population changed."""
        if manager.generation == self._generation:
            return
        specs = [
            GroupSpec(
                start=start,
                n_cells=n_cells,
                n_vertices=n_vertices,
                reference=reference,
                shear_modulus=sample.shear_modulus,
                skalak_C=sample.skalak_C,
                k_bend=sample.k_bend,
                k_area=sample.k_area,
                k_volume=sample.k_volume,
            )
            for reference, sample, start, n_cells, n_vertices
            in manager.packed_segments()
        ]
        n_markers = sum(s.n_cells * s.n_vertices for s in specs)
        self._specs = specs
        self._stencil_valid = False
        tasks = _cell_chunks(specs, self.n_workers)
        marker_ranges = _split_range(n_markers, self.n_workers)
        node_ranges = _split_range(self.grid_size, self.n_workers)
        if self.backend == "processes":
            if n_markers != self._n_markers or not self._segments:
                self._remap_segments(n_markers)
            for w, conn in enumerate(self._conns):
                conn.send(("population", specs, tasks[w], marker_ranges[w],
                           node_ranges[w], n_markers, self._shm_names))
            for conn in self._conns:
                conn.recv()
        else:
            s3 = self.kernel.support ** 3
            if n_markers != self._n_markers:
                self._flat_buf = np.empty(n_markers * s3, dtype=np.int64)
                self._contrib_buf = np.empty(
                    (3, n_markers * s3), dtype=np.float64
                )
            for w, worker in enumerate(self._workers):
                worker.set_population(specs, tasks[w], marker_ranges[w],
                                      node_ranges[w])
        self._n_markers = n_markers
        self._generation = manager.generation
        get_telemetry().gauge("fsi.workers").set(self.n_workers)

    def _remap_segments(self, n_markers: int) -> None:
        """Recreate marker-sized shared segments for a new population.

        Mutates ``self._segments`` in place so the GC finalizer keeps
        tracking the live set.
        """
        self._shm_arrays.clear()
        _unlink_segments(self._segments)
        self._segments.clear()
        self._shm_names.clear()
        s3 = self.kernel.support ** 3
        n = max(1, n_markers)  # zero-byte segments are not allowed
        sizes = {
            "verts": n * 3 * 8,
            "io": n * 3 * 8,
            "flat": n * s3 * 8,
            "contrib": 3 * n * s3 * 8,
            "field": 3 * self.grid_size * 8,
        }
        shms = {}
        for key, nbytes in sizes.items():
            shm = shared_memory.SharedMemory(create=True, size=nbytes)
            self._segments.append(shm)
            self._shm_names[key] = shm.name
            shms[key] = shm
        self._shm_arrays = _attach_arrays(shms, n_markers, s3,
                                          self.grid_shape)

    # -- stage dispatch ------------------------------------------------
    def _run(self, stage: str, *args, label: str | None = None) -> list:
        """Run one stage on every worker; returns per-worker replies.

        Collecting every reply before returning is the barrier between
        stages (the scatter must not start until all contribs landed).

        When a live telemetry backend is installed and ``label`` is set,
        each worker's wall interval is folded into the per-rank balance
        accounting under ``fsi/<label>``, and — under tracing — merged
        into the driver timeline as a child span of the enclosing phase.
        The :class:`~repro.telemetry.backend.NullTelemetry` path takes
        none of these branches, so the hot path is unchanged when
        observability is off.
        """
        tel = get_telemetry()
        record = tel.enabled and label is not None
        if self.backend == "processes":
            for conn in self._conns:
                conn.send((stage,) if not args else (stage, *args))
            raw = [conn.recv() for conn in self._conns]
            if record:
                self._record_stage(tel, label, raw)
            return [reply for reply, _, _ in raw]
        if self.backend == "threads" and len(self._workers) > 1:
            if record:
                futures = [
                    self._pool.submit(_timed_call, getattr(w, stage), args)
                    for w in self._workers
                ]
                raw = [f.result() for f in futures]
                self._record_stage(tel, label, raw)
                return [reply for reply, _, _ in raw]
            futures = [
                self._pool.submit(getattr(w, stage), *args)
                for w in self._workers
            ]
            return [f.result() for f in futures]
        if record:
            raw = [
                _timed_call(getattr(w, stage), args) for w in self._workers
            ]
            self._record_stage(tel, label, raw)
            return [reply for reply, _, _ in raw]
        return [getattr(w, stage)(*args) for w in self._workers]

    def _record_stage(self, tel, label: str, raw: list[tuple]) -> None:
        """Fold ``(reply, t0, t1)`` worker intervals into telemetry."""
        tel.record_rank_seconds(
            f"fsi/{label}", {w: t1 - t0 for w, (_, t0, t1) in enumerate(raw)}
        )
        tracer = tel.tracer
        if tracer is not None:
            parent = tracer.current_id
            for w, (_, t0, t1) in enumerate(raw):
                tracer.add(label, t0, t1, parent_id=parent, rank=w,
                           category="worker")

    # -- step operations -----------------------------------------------
    def total_forces(self, manager):
        """Membrane (sharded) + contact (serial) forces, packed order.

        Drop-in replacement for ``CellManager.total_forces``: returns the
        manager-owned packed force/vertex arrays and the cell list.
        """
        from ..fsi.contact import contact_forces  # deferred: scipy cost

        tel = get_telemetry()
        self.sync_population(manager)
        verts, forces, ordinals, cells = manager.packed_arrays()
        with tel.phase("fsi/forces"):
            if self.backend == "processes":
                np.copyto(self._shm_arrays["verts"], verts)
                self._run("forces", label="forces")
                np.copyto(forces, self._shm_arrays["io"])
            else:
                self._run("membrane_forces", verts, forces, label="forces")
        forces += contact_forces(
            verts, ordinals, manager.contact_cutoff,
            manager.contact_stiffness, table=self._kt,
        )
        return forces, verts, cells

    def begin_step(self, verts: np.ndarray) -> None:
        """Build the sharded marker stencil for the current positions."""
        tel = get_telemetry()
        with tel.phase("fsi/stencil"):
            if self.backend == "processes":
                np.copyto(self._shm_arrays["verts"], verts)
                replies = self._run("stencil", label="stencil")
            else:
                replies = self._run("build_stencil", verts, self._flat_buf,
                                    label="stencil")
        n_clipped = int(sum(replies))
        if self.mode == "clip" and n_clipped:
            self._record_clipped(n_clipped)
        self._stencil_valid = True

    def end_step(self) -> None:
        """Invalidate the cached stencil (markers are about to move)."""
        self._stencil_valid = False

    def spread(self, forces_lat: np.ndarray, out_field: np.ndarray) -> None:
        """Spread marker forces into ``out_field`` (adds in place)."""
        if not self._stencil_valid:
            raise RuntimeError("spread() requires begin_step() first")
        tel = get_telemetry()
        with tel.phase("fsi/spread"):
            if self.backend == "processes":
                np.copyto(self._shm_arrays["io"], forces_lat)
                self._run("contrib", label="spread_contrib")
                field = self._shm_arrays["field"]
                field.fill(0.0)
                self._run("scatter", label="spread_scatter")
                out_field += field
            else:
                self._run("spread_contrib", forces_lat, self._contrib_buf,
                          label="spread_contrib")
                self._run("spread_scatter", self._flat_buf,
                          self._contrib_buf, out_field.reshape(3, -1),
                          label="spread_scatter")

    def interpolate(self, field: np.ndarray) -> np.ndarray:
        """Interpolate ``field`` at the markers of the cached stencil."""
        if not self._stencil_valid:
            raise RuntimeError("interpolate() requires begin_step() first")
        tel = get_telemetry()
        with tel.phase("fsi/interp"):
            if self.backend == "processes":
                np.copyto(self._shm_arrays["field"], field)
                self._run("interp", label="interp")
                return self._shm_arrays["io"][:self._n_markers].copy()
            out = np.empty((self._n_markers, 3), dtype=np.float64)
            self._run("interpolate", field, out, label="interp")
            return out

    def _record_clipped(self, n_clipped: int) -> None:
        get_telemetry().inc("ibm.clipped_markers", n_clipped)
        if not self._warned_clip:
            import warnings

            warnings.warn(
                f"{n_clipped} IBM marker(s) have kernel support outside "
                "the lattice; mode='clip' clamps their weights onto "
                "boundary nodes, which distorts the spread force field "
                "near the window edge (tracked by the "
                "'ibm.clipped_markers' telemetry counter)",
                RuntimeWarning,
                stacklevel=4,
            )
            self._warned_clip = True
