"""Executor backends for the block-decomposed LBM runtime.

The barriered distributed step is three rank-parallel phases with a
barrier after each one:

* ``collide``    — BGK-collide each rank's full padded block (reads own
  ``f``, writes own ``post``);
* ``halo_f`` / ``halo_post`` — fill each rank's halo rim from its
  neighbors' interiors (reads neighbor interiors, writes own rim);
* ``stream``     — pull-stream each rank's interior from its padded
  ``post`` (reads own ``post``, writes own ``f`` interior).

The fused ``step`` phase collapses those into ONE executor round-trip
with a single worker-side barrier: in exchange mode every rank collides
its one-node rim first, then — after the barrier guarantees all rims are
posted — fills its halo (the packed rim ships while other chunks are
still deep in their interior collide), collides the deep interior, and
streams; in recompute mode the pre-collision ``f`` rim is exchanged
first, then the full collide+stream runs behind the barrier.  Race
freedom is unchanged: the halo fill reads only neighbor *rim-interior*
layers written before the barrier, and the post-barrier writes touch
only deep-interior ``post`` and own ``f``.

Every phase is race-free across ranks (disjoint write sets, and reads
never overlap another rank's writes within a phase), so the same kernels
run under three interchangeable backends:

* ``serial``     — loop over ranks in the calling thread (the virtual
  runtime; zero extra machinery);
* ``threads``    — a persistent :class:`~concurrent.futures.ThreadPoolExecutor`
  over per-worker rank chunks (NumPy kernels release the GIL for large
  copies/BLAS calls);
* ``processes``  — a persistent ``multiprocessing`` worker pool pinned to
  rank chunks for the life of the run, with every rank block living in a
  :mod:`multiprocessing.shared_memory` segment so workers operate on the
  *same* memory the parent scatters/gathers — the in-process analogue of
  the paper's 36-CPU-tasks-per-node layout (Section 2.4.4).

Backends are selected per solver or globally via the
``REPRO_PARALLEL_BACKEND`` / ``REPRO_PARALLEL_WORKERS`` environment
variables (used by CI to re-run the parallel suite under the processes
backend).
"""

from __future__ import annotations

import os
import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from time import perf_counter

import multiprocessing as mp
from multiprocessing import shared_memory

import numpy as np

from ..kernels import get_kernel_table, resolve_kernels
from ..lbm.boundaries import apply_bounce_back
from ..lbm.collision import CollisionScratch, moments
from ..lbm.lattice import D3Q19
from ..lbm.streaming import _INTERIOR, padded_upwind_solid_masks
from .decomposition import BlockDecomposition
from .halo import fill_rank_halo

#: Supported executor backends, in increasing order of machinery.
BACKENDS = ("serial", "threads", "processes")

#: Step phases an executor can run (halo variant depends on the mode);
#: ``step`` is the fused single-round-trip pipeline.
PHASES = ("collide", "halo_f", "halo_post", "stream", "step")

#: Sub-phase names the fused ``step`` reports per-rank seconds under.
STEP_SUBPHASES = ("collide", "halo", "stream")


def resolve_backend(
    backend: str | None,
    n_workers: int | None,
    n_tasks: int,
) -> tuple[str, int]:
    """Resolve backend/worker-count requests against env and hardware.

    ``None`` values fall back to ``REPRO_PARALLEL_BACKEND`` (default
    ``serial``) and ``REPRO_PARALLEL_WORKERS`` (default: one worker per
    CPU, capped at the rank count).
    """
    if backend is None:
        backend = os.environ.get("REPRO_PARALLEL_BACKEND", "serial")
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; pick one of {BACKENDS}")
    if n_workers is None:
        env = os.environ.get("REPRO_PARALLEL_WORKERS")
        n_workers = int(env) if env else (os.cpu_count() or 1)
    n_workers = max(1, min(int(n_workers), n_tasks))
    if backend == "serial":
        n_workers = 1
    return backend, n_workers


# ----------------------------------------------------------------------
# Rank block storage


def _padded_shape(decomp: BlockDecomposition, rank: int) -> tuple[int, ...]:
    lx, ly, lz = decomp.local_shape(rank)
    return (D3Q19.Q, lx + 2, ly + 2, lz + 2)


def _unlink_segments(segments: list) -> None:
    for shm in segments:
        try:
            shm.close()
        except BufferError:
            # A live ndarray view still maps the buffer; unlinking below
            # removes the name anyway and the OS frees the memory when
            # the last mapping dies.
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class RankBlocks:
    """Per-rank padded ``(f, post)`` arrays, optionally shared-memory backed.

    Each rank's pair lives in one buffer of shape ``(2, Q, lx+2, ly+2,
    lz+2)``: plain ndarrays for the serial/threads backends, a
    :class:`~multiprocessing.shared_memory.SharedMemory` segment for the
    processes backend (workers attach by name and see the same bytes the
    parent scatters into).  Segments are unlinked on :meth:`close` and,
    as a safety net, by a GC finalizer.
    """

    def __init__(self, decomp: BlockDecomposition, shared: bool = False,
                 dtype=np.float64):
        self.decomp = decomp
        self.shared = bool(shared)
        self.dtype = np.dtype(dtype)
        self.f: list[np.ndarray] = []
        self.post: list[np.ndarray] = []
        self.segment_names: list[str] | None = [] if shared else None
        self._segments: list[shared_memory.SharedMemory] = []
        for rank in range(decomp.n_tasks):
            shape = (2,) + _padded_shape(decomp, rank)
            if shared:
                shm = shared_memory.SharedMemory(
                    create=True,
                    size=int(np.prod(shape)) * self.dtype.itemsize,
                )
                self._segments.append(shm)
                self.segment_names.append(shm.name)
                pair = np.ndarray(shape, dtype=self.dtype, buffer=shm.buf)
                pair.fill(0.0)
            else:
                pair = np.zeros(shape, dtype=self.dtype)
            self.f.append(pair[0])
            self.post.append(pair[1])
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._segments
        )

    def close(self) -> None:
        """Release shared-memory segments (idempotent).

        Clears the view lists *in place* so aliases (the solver's
        ``locals``) drop their references too.
        """
        self.f.clear()
        self.post.clear()
        self._finalizer()


# ----------------------------------------------------------------------
# Rank-local kernels (shared by every backend and the worker processes)


class ChunkRunner:
    """Executes step phases for a fixed chunk of ranks.

    Owns the collision scratch for its ranks (one
    :class:`~repro.lbm.collision.CollisionScratch` per distinct padded
    shape — chunks run their ranks sequentially, so scratch is reused
    across same-shaped blocks without races).

    ``pack`` enables direction-aware packing of post-collision halo
    fills (the ``f`` pre-exchange of recompute mode always ships the
    full rim it needs).  ``solid`` maps rank -> padded rank-local solid
    array; when present, halfway bounce-back follows every stream so
    walled lattices run distributed.
    """

    def __init__(self, ranks: list[int], decomp: BlockDecomposition,
                 tau: float, kernels: str | None = None,
                 halo_mode: str = "exchange", pack: bool = False,
                 solid: dict[int, np.ndarray] | None = None):
        self.ranks = list(ranks)
        self.decomp = decomp
        self.tau = float(tau)
        self.kernels = resolve_kernels(kernels)
        table = get_kernel_table(self.kernels)
        self._collide = table["collide_bgk"]
        self._collide_rim = table["collide_bgk_rim"]
        self._collide_interior = table["collide_bgk_interior"]
        self._stream_padded = table["stream_pull_padded"]
        self.halo_mode = halo_mode
        self.pack = bool(pack)
        self.solid = solid
        self._masks: dict[int, np.ndarray] = {}
        self._scratch: dict[tuple, CollisionScratch] = {}
        #: Per-rank cached full-block ``(rho, mom)`` buffers for the
        #: fused split schedule (the moment matmul's BLAS rounding is
        #: column-count-dependent, so rim and interior collides must
        #: share ONE full-block moment pass to stay bitwise-equal to
        #: the barriered full-block collide).
        self._moments: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def _moments_for(self, r: int, f: np.ndarray):
        bufs = self._moments.get(r)
        if bufs is None or bufs[0].shape != f.shape[1:] \
                or bufs[0].dtype != f.dtype:
            bufs = self._moments[r] = (
                np.empty(f.shape[1:], dtype=f.dtype),
                np.empty((3,) + f.shape[1:], dtype=f.dtype),
            )
        return moments(f, out_rho=bufs[0], out_mom=bufs[1])

    def _scratch_for(
        self, shape: tuple[int, ...], dtype=np.float64
    ) -> CollisionScratch:
        key = (shape, np.dtype(dtype))
        sc = self._scratch.get(key)
        if sc is None:
            sc = self._scratch[key] = CollisionScratch(shape, dtype=dtype)
        return sc

    def _stream(self, r: int, f_arrs, post_arrs) -> None:
        """Pull-stream one rank's interior, then bounce back at walls."""
        self._stream_padded(post_arrs[r], out=f_arrs[r])
        if self.solid is None:
            return
        solid_padded = self.solid.get(r)
        if solid_padded is None:
            return
        masks = self._masks.get(r)
        if masks is None:
            masks = self._masks[r] = padded_upwind_solid_masks(solid_padded)
        idx = (slice(None),) + _INTERIOR
        apply_bounce_back(f_arrs[r][idx], post_arrs[r][idx], masks)

    def run(
        self,
        phase: str,
        f_arrs: list[np.ndarray],
        post_arrs: list[np.ndarray],
        parent_span: int | None = None,
    ) -> tuple[dict[int, float], list[tuple[int, int, int]], list[tuple]]:
        """Run one barriered phase over the chunk's ranks.

        Returns per-rank wall seconds, the halo transfer records (empty
        for compute phases), and — when the driver passed its trace
        ``parent_span`` id — one ``(rank, parent_span, t0, t1)`` span
        interval per rank, stamped on the shared monotonic clock so the
        driver can merge them into its timeline.
        """
        per_rank: dict[int, float] = {}
        transfers: list[tuple[int, int, int]] = []
        spans: list[tuple] = []
        for r in self.ranks:
            t0 = perf_counter()
            if phase == "collide":
                # Full padded block: the stale rim costs a sliver of
                # redundant flops but keeps the arrays contiguous (no
                # per-step ascontiguousarray copy).  In exchange mode the
                # rim is overwritten by the halo fill; in recompute mode
                # the rim was pre-exchanged, so colliding it *is* the
                # paper's recompute-instead-of-communicate trick.
                self._collide(
                    f_arrs[r],
                    self.tau,
                    out=post_arrs[r],
                    scratch=self._scratch_for(
                        f_arrs[r].shape[1:], f_arrs[r].dtype
                    ),
                )
            elif phase == "halo_f":
                transfers.extend(fill_rank_halo(r, f_arrs, self.decomp))
            elif phase == "halo_post":
                transfers.extend(
                    fill_rank_halo(r, post_arrs, self.decomp, pack=self.pack)
                )
            elif phase == "stream":
                self._stream(r, f_arrs, post_arrs)
            else:
                raise ValueError(f"unknown phase {phase!r}")
            t1 = perf_counter()
            per_rank[r] = t1 - t0
            if parent_span is not None:
                spans.append((r, parent_span, t0, t1))
        return per_rank, transfers, spans

    def run_step(
        self,
        f_arrs: list[np.ndarray],
        post_arrs: list[np.ndarray],
        parent_span: int | None = None,
        barrier=None,
    ) -> tuple[dict[int, float], list[tuple[int, int, int]], list[tuple],
               dict[str, dict[int, float]], float]:
        """Run one fused LBM step over the chunk's ranks.

        The single ``barrier`` wait separates the pre-exchange writes
        (rim collide in exchange mode, ``f`` rim fill in recompute mode)
        from the reads that depend on *other* chunks having finished
        theirs.  Returns ``(seconds_by_rank, transfers, spans,
        per_subphase_seconds, barrier_wait_seconds)``; spans carry the
        sub-phase name as a 5th element.
        """
        per_phase: dict[str, dict[int, float]] = {
            name: {} for name in STEP_SUBPHASES
        }
        transfers: list[tuple[int, int, int]] = []
        spans: list[tuple] = []

        def mark(r: int, name: str, t0: float, t1: float) -> None:
            acc = per_phase[name]
            acc[r] = acc.get(r, 0.0) + (t1 - t0)
            if parent_span is not None:
                spans.append((r, parent_span, t0, t1, name))

        if self.halo_mode == "exchange":
            # Rim first: its post-collision values are all any neighbor
            # ever reads, so the exchange can start as soon as every
            # chunk clears the barrier — while interiors still collide.
            for r in self.ranks:
                t0 = perf_counter()
                self._collide_rim(
                    f_arrs[r], self.tau, out=post_arrs[r],
                    scratch_for=self._scratch_for, collide=self._collide,
                    moments_in=self._moments_for(r, f_arrs[r]),
                )
                mark(r, "collide", t0, perf_counter())
            wait_s = self._barrier_wait(barrier)
            for r in self.ranks:
                t0 = perf_counter()
                transfers.extend(
                    fill_rank_halo(r, post_arrs, self.decomp, pack=self.pack)
                )
                t1 = perf_counter()
                mark(r, "halo", t0, t1)
                self._collide_interior(
                    f_arrs[r], self.tau, out=post_arrs[r],
                    scratch_for=self._scratch_for, collide=self._collide,
                    moments_in=self._moments[r],
                )
                t2 = perf_counter()
                mark(r, "collide", t1, t2)
                self._stream(r, f_arrs, post_arrs)
                mark(r, "stream", t2, perf_counter())
        elif self.halo_mode == "recompute":
            # Pre-exchange the full f rim, then collide everything
            # (ghost rim included — the recompute trick) and stream.
            # The barrier keeps this step's stream writes off the f
            # rim-interior layers other chunks are still reading.
            for r in self.ranks:
                t0 = perf_counter()
                transfers.extend(fill_rank_halo(r, f_arrs, self.decomp))
                mark(r, "halo", t0, perf_counter())
            wait_s = self._barrier_wait(barrier)
            for r in self.ranks:
                t0 = perf_counter()
                self._collide(
                    f_arrs[r], self.tau, out=post_arrs[r],
                    scratch=self._scratch_for(
                        f_arrs[r].shape[1:], f_arrs[r].dtype
                    ),
                )
                t1 = perf_counter()
                mark(r, "collide", t0, t1)
                self._stream(r, f_arrs, post_arrs)
                mark(r, "stream", t1, perf_counter())
        else:
            raise ValueError(f"unknown halo mode {self.halo_mode!r}")
        seconds = {
            r: sum(per_phase[name].get(r, 0.0) for name in STEP_SUBPHASES)
            for r in self.ranks
        }
        return seconds, transfers, spans, per_phase, wait_s

    @staticmethod
    def _barrier_wait(barrier) -> float:
        if barrier is None:
            return 0.0
        t0 = perf_counter()
        barrier.wait()
        return perf_counter() - t0


def _chunk_ranks(n_tasks: int, n_workers: int) -> list[list[int]]:
    """Contiguous near-even rank chunks, one per worker."""
    chunks: list[list[int]] = []
    base, extra = divmod(n_tasks, n_workers)
    start = 0
    for w in range(n_workers):
        size = base + (1 if w < extra else 0)
        chunks.append(list(range(start, start + size)))
        start += size
    return [c for c in chunks if c]


@dataclass
class PhaseResult:
    """Aggregated outcome of one rank-parallel phase."""

    seconds_by_rank: dict[int, float] = field(default_factory=dict)
    #: ``(dst_rank, src_rank, nbytes)`` halo slab records.
    transfers: list[tuple[int, int, int]] = field(default_factory=list)
    #: ``(rank, parent_span_id, t0, t1[, subphase])`` worker intervals;
    #: populated only when the driver requested tracing for the phase.
    spans: list[tuple] = field(default_factory=list)
    #: Fused-step only: per-sub-phase per-rank seconds
    #: (``{"collide"|"halo"|"stream": {rank: s}}``).
    phase_seconds: dict[str, dict[int, float]] | None = None
    #: Fused-step only: per-chunk barrier wait seconds.
    wait_seconds: list[float] = field(default_factory=list)

    @property
    def bytes_sent(self) -> int:
        return sum(t[2] for t in self.transfers)

    @property
    def messages(self) -> int:
        """Coalesced per-neighbor-pair message count."""
        return len({(t[0], t[1]) for t in self.transfers})

    @property
    def slabs(self) -> int:
        """Raw q-direction slab copy count (pre-coalescing)."""
        return len(self.transfers)


# ----------------------------------------------------------------------
# Executors


def _merge_step_reply(result: PhaseResult, reply: tuple) -> None:
    """Fold one chunk's fused-step reply into the aggregate result."""
    per_rank, transfers, spans, per_phase, wait_s = reply
    result.seconds_by_rank.update(per_rank)
    result.transfers.extend(transfers)
    result.spans.extend(spans)
    if result.phase_seconds is None:
        result.phase_seconds = {name: {} for name in STEP_SUBPHASES}
    for name, acc in per_phase.items():
        result.phase_seconds[name].update(acc)
    result.wait_seconds.append(wait_s)


class SerialExecutor:
    """Runs every rank in the calling thread (the virtual runtime).

    ``begin_phase`` executes synchronously (there is nothing to overlap
    with); the begin/finish split exists so all three backends share one
    protocol.
    """

    backend = "serial"

    def __init__(self, blocks: RankBlocks, tau: float, n_workers: int = 1,
                 kernels: str | None = None, halo_mode: str = "exchange",
                 pack: bool = False,
                 solid: dict[int, np.ndarray] | None = None):
        self.blocks = blocks
        self.n_workers = 1
        self._runner = ChunkRunner(
            list(range(blocks.decomp.n_tasks)), blocks.decomp, tau, kernels,
            halo_mode=halo_mode, pack=pack, solid=solid,
        )
        self._pending: PhaseResult | None = None

    def begin_phase(self, phase: str,
                    parent_span: int | None = None) -> None:
        if self._pending is not None:
            raise RuntimeError("a phase is already in flight")
        if phase == "step":
            result = PhaseResult()
            _merge_step_reply(result, self._runner.run_step(
                self.blocks.f, self.blocks.post, parent_span, None
            ))
        else:
            per_rank, transfers, spans = self._runner.run(
                phase, self.blocks.f, self.blocks.post, parent_span
            )
            result = PhaseResult(per_rank, transfers, spans)
        self._pending = result

    def finish_phase(self) -> PhaseResult:
        if self._pending is None:
            raise RuntimeError("no phase in flight")
        result, self._pending = self._pending, None
        return result

    def run_phase(self, phase: str,
                  parent_span: int | None = None) -> PhaseResult:
        self.begin_phase(phase, parent_span)
        return self.finish_phase()

    def close(self) -> None:
        pass


class ThreadExecutor:
    """Persistent thread pool over per-worker rank chunks."""

    backend = "threads"

    def __init__(self, blocks: RankBlocks, tau: float, n_workers: int,
                 kernels: str | None = None, halo_mode: str = "exchange",
                 pack: bool = False,
                 solid: dict[int, np.ndarray] | None = None):
        self.blocks = blocks
        self._runners = [
            ChunkRunner(ranks, blocks.decomp, tau, kernels,
                        halo_mode=halo_mode, pack=pack, solid=solid)
            for ranks in _chunk_ranks(blocks.decomp.n_tasks, n_workers)
        ]
        self.n_workers = len(self._runners)
        self._barrier = threading.Barrier(self.n_workers)
        self._pool = ThreadPoolExecutor(
            max_workers=self.n_workers, thread_name_prefix="repro-rank"
        )
        self._pending: tuple[str, list] | None = None
        self._finalizer = weakref.finalize(self, self._pool.shutdown, False)

    def begin_phase(self, phase: str,
                    parent_span: int | None = None) -> None:
        if self._pending is not None:
            raise RuntimeError("a phase is already in flight")
        if phase == "step":
            futures = [
                self._pool.submit(rn.run_step, self.blocks.f,
                                  self.blocks.post, parent_span,
                                  self._barrier)
                for rn in self._runners
            ]
        else:
            futures = [
                self._pool.submit(rn.run, phase, self.blocks.f,
                                  self.blocks.post, parent_span)
                for rn in self._runners
            ]
        self._pending = (phase, futures)

    def finish_phase(self) -> PhaseResult:
        if self._pending is None:
            raise RuntimeError("no phase in flight")
        (phase, futures), self._pending = self._pending, None
        result = PhaseResult()
        for fut in futures:  # barrier: a phase ends when every chunk has
            if phase == "step":
                _merge_step_reply(result, fut.result())
            else:
                per_rank, transfers, spans = fut.result()
                result.seconds_by_rank.update(per_rank)
                result.transfers.extend(transfers)
                result.spans.extend(spans)
        return result

    def run_phase(self, phase: str,
                  parent_span: int | None = None) -> PhaseResult:
        self.begin_phase(phase, parent_span)
        return self.finish_phase()

    def close(self) -> None:
        self._pool.shutdown(wait=True)
        self._finalizer.detach()


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a parent-owned segment from a worker process.

    Workers are ``multiprocessing`` children, so they share the parent's
    resource tracker (both fork and spawn hand the tracker fd down) and
    the attach-time ``register`` is an idempotent no-op on the tracker's
    name set; the parent's single ``unlink`` is the one true cleanup.
    Unregistering here would *remove* the parent's registration and make
    that unlink trip a KeyError in the tracker — so don't.
    """
    return shared_memory.SharedMemory(name=name)


def _worker_main(conn, ranks, segment_names, decomp, tau,
                 kernels=None, dtype=np.float64, halo_mode="exchange",
                 pack=False, solid=None, barrier=None) -> None:
    """Worker loop: attach the shared blocks, serve phase commands.

    One worker is pinned to its rank chunk for the life of the run; the
    parent acts as the barrier by collecting every worker's reply before
    issuing the next phase — except for the fused ``step`` command,
    whose single mid-step synchronization is the shared ``barrier``
    (parties = worker count), so a whole step costs ONE pipe round-trip.
    ``kernels`` arrives pre-resolved from the parent so every worker
    runs the same kernels backend the parent selected (the child
    re-resolves it against its own numba availability, falling back to
    NumPy rather than dying).
    """
    segments = []
    pairs: list[np.ndarray] = []
    f_arrs: list[np.ndarray] = []
    post_arrs: list[np.ndarray] = []
    try:
        for rank, name in enumerate(segment_names):
            shm = _attach_segment(name)
            segments.append(shm)
            pair = np.ndarray(
                (2,) + _padded_shape(decomp, rank),
                dtype=dtype,
                buffer=shm.buf,
            )
            pairs.append(pair)
            f_arrs.append(pair[0])
            post_arrs.append(pair[1])
        runner = ChunkRunner(ranks, decomp, tau, kernels,
                             halo_mode=halo_mode, pack=pack, solid=solid)
        while True:
            msg = conn.recv()
            if msg == "stop":
                break
            # A traced phase arrives as ``(phase, parent_span_id)``; the
            # untraced protocol stays the bare phase string, so tracing
            # off costs the worker nothing new.
            if isinstance(msg, tuple):
                cmd, parent_span = msg
            else:
                cmd, parent_span = msg, None
            if cmd == "step":
                conn.send(runner.run_step(
                    f_arrs, post_arrs, parent_span, barrier
                ))
            else:
                per_rank, transfers, spans = runner.run(
                    cmd, f_arrs, post_arrs, parent_span
                )
                conn.send((per_rank, transfers, spans))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        # Views must die before the mapped buffers can be closed.
        f_arrs.clear()
        post_arrs.clear()
        pairs.clear()
        for shm in segments:
            shm.close()
        conn.close()


def _shutdown_workers(procs, conns) -> None:
    for conn in conns:
        try:
            conn.send("stop")
        except (OSError, BrokenPipeError):
            pass
    for proc in procs:
        proc.join(timeout=5.0)
        if proc.is_alive():
            proc.terminate()
            proc.join(timeout=5.0)
    for conn in conns:
        conn.close()


class ProcessExecutor:
    """Persistent ``multiprocessing`` pool over shared-memory rank blocks.

    Workers are pinned to contiguous rank chunks at start and keep their
    collision scratch hot across steps; each phase costs one tiny pipe
    round-trip per worker, with the lattice data itself never crossing
    the pipe (it lives in the shared segments).
    """

    backend = "processes"

    def __init__(self, blocks: RankBlocks, tau: float, n_workers: int,
                 kernels: str | None = None, halo_mode: str = "exchange",
                 pack: bool = False,
                 solid: dict[int, np.ndarray] | None = None):
        if not blocks.shared:
            raise ValueError("processes backend requires shared rank blocks")
        self.blocks = blocks
        kernels = resolve_kernels(kernels)
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")
        chunks = _chunk_ranks(blocks.decomp.n_tasks, n_workers)
        self.n_workers = len(chunks)
        #: Every Pipe command name issued, in order — the round-trip
        #: ledger the fused-pipeline acceptance check reads (3 commands
        #: per barriered step vs 1 per fused step).
        self.command_log: list[str] = []
        self._barrier = ctx.Barrier(self.n_workers)
        self._pending: int = 0
        self._procs = []
        self._conns = []
        for ranks in chunks:
            parent_conn, child_conn = ctx.Pipe()
            chunk_solid = (
                None if solid is None
                else {r: solid[r] for r in ranks if r in solid}
            )
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, ranks, blocks.segment_names,
                      blocks.decomp, tau, kernels, blocks.dtype,
                      halo_mode, pack, chunk_solid, self._barrier),
                daemon=True,
                name=f"repro-rank-{ranks[0]}-{ranks[-1]}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._finalizer = weakref.finalize(
            self, _shutdown_workers, self._procs, self._conns
        )

    def begin_phase(self, phase: str,
                    parent_span: int | None = None) -> None:
        """Issue the phase command to every worker without blocking.

        All pipe sends go out before any reply is read, so the workers
        run the phase concurrently; :meth:`finish_phase` collects.
        """
        if self._pending:
            raise RuntimeError("a phase is already in flight")
        msg = phase if parent_span is None else (phase, parent_span)
        self.command_log.append(phase)
        for conn in self._conns:
            conn.send(msg)
        self._pending = len(self._conns)
        self._pending_phase = phase

    def finish_phase(self) -> PhaseResult:
        if not self._pending:
            raise RuntimeError("no phase in flight")
        result = PhaseResult()
        for conn in self._conns:  # reply collection is the phase barrier
            reply = conn.recv()
            if self._pending_phase == "step":
                _merge_step_reply(result, reply)
            else:
                per_rank, transfers, spans = reply
                result.seconds_by_rank.update(per_rank)
                result.transfers.extend(transfers)
                result.spans.extend(spans)
        self._pending = 0
        return result

    def run_phase(self, phase: str,
                  parent_span: int | None = None) -> PhaseResult:
        self.begin_phase(phase, parent_span)
        return self.finish_phase()

    def close(self) -> None:
        self._finalizer()


def make_executor(
    backend: str,
    blocks: RankBlocks,
    tau: float,
    n_workers: int,
    kernels: str | None = None,
    halo_mode: str = "exchange",
    pack: bool = False,
    solid: dict[int, np.ndarray] | None = None,
):
    """Build the executor for a resolved backend name."""
    kw = dict(kernels=kernels, halo_mode=halo_mode, pack=pack, solid=solid)
    if backend == "serial":
        return SerialExecutor(blocks, tau, **kw)
    if backend == "threads":
        return ThreadExecutor(blocks, tau, n_workers, **kw)
    if backend == "processes":
        return ProcessExecutor(blocks, tau, n_workers, **kw)
    raise ValueError(f"unknown backend {backend!r}; pick one of {BACKENDS}")
