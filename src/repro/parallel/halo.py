"""Halo exchange with byte/message accounting.

The distributed solver keeps each rank's lattice in a padded local array
(one-node halo).  :class:`HaloAccountant` performs the exchange by direct
array copies (this is an in-process virtual runtime — the "network" is
memory) while counting the bytes and messages each rank would send over
a real interconnect.  Those counters feed the scaling model (Figs. 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .decomposition import BlockDecomposition


@dataclass
class CommCounters:
    """Per-exchange communication totals."""

    bytes_sent: int = 0
    messages: int = 0
    by_rank: dict = field(default_factory=dict)

    def add(self, rank: int, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.by_rank[rank] = self.by_rank.get(rank, 0) + nbytes


class HaloAccountant:
    """Performs and accounts halo exchanges over a block decomposition.

    Local arrays are padded by one node on every face; the exchange fills
    each rank's halo from the neighbor's outermost interior layer, with
    periodic wrap handled by the decomposition's neighbor map.
    """

    def __init__(self, decomp: BlockDecomposition):
        self.decomp = decomp
        self.counters = CommCounters()

    def exchange(self, locals_: list[np.ndarray]) -> None:
        """Fill halos of all ranks' padded arrays, counting traffic.

        ``locals_[r]`` has shape (C, lx+2, ly+2, lz+2) for rank r.
        """
        from ..lbm.lattice import D3Q19

        d = self.decomp
        for rank, arr in enumerate(locals_):
            for q in range(1, D3Q19.Q):
                off = tuple(int(v) for v in D3Q19.c[q])
                nb = d.neighbor(rank, off)
                if nb is None:
                    continue
                src = locals_[nb]
                # Source slab: neighbor's interior layer adjacent to us;
                # destination: our halo layer in direction `off`.
                src_sl: list[slice] = [slice(None)]
                dst_sl: list[slice] = [slice(None)]
                for ax in range(3):
                    o = off[ax]
                    if o == 0:
                        src_sl.append(slice(1, src.shape[ax + 1] - 1))
                        dst_sl.append(slice(1, arr.shape[ax + 1] - 1))
                    elif o > 0:
                        # Halo on our high face comes from the neighbor's
                        # low interior layer.
                        src_sl.append(slice(1, 2))
                        dst_sl.append(slice(arr.shape[ax + 1] - 1, arr.shape[ax + 1]))
                    else:
                        src_sl.append(slice(src.shape[ax + 1] - 2, src.shape[ax + 1] - 1))
                        dst_sl.append(slice(0, 1))
                chunk = src[tuple(src_sl)]
                arr[tuple(dst_sl)] = chunk
                if nb != rank:  # self-wrap copies are not network traffic
                    self.counters.add(nb, chunk.nbytes)

    def reset_counters(self) -> None:
        self.counters = CommCounters()
