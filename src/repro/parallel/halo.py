"""Halo exchange with byte/message accounting.

The distributed solver keeps each rank's lattice in a padded local array
(one-node halo).  :func:`fill_rank_halo` performs one rank's fill by
direct array copies (the "network" is memory — plain ndarrays for the
serial/threads backends, ``shared_memory`` views for the processes
backend) while reporting the bytes each transfer would ship over a real
interconnect.  :class:`HaloAccountant` wraps it with cumulative counters
that feed the scaling model (Figs. 7-8).

Direction-aware packing (``pack=True``): the pull stream only ever reads
the halo populations whose lattice vector points *into* the receiving
block — 5 of the 19 per face slab and 1 per edge slab for D3Q19
(:data:`PACKED_QS`) — so exchange mode can ship just those, cutting the
shipped volume ~3-4x without changing a single streamed value.  The
recompute halo mode keeps the full-population ``f`` exchange it
semantically needs (the ghost-rim collide couples all 19 populations at
each ghost node).

The fill is race-free under rank-parallel execution: rank ``r`` writes
only its *own* halo rim and reads only its neighbors' outermost
*interior* layers, so no two ranks touch the same memory with a write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lbm.lattice import D3Q19
from .decomposition import BlockDecomposition


def _build_packed_qs() -> dict:
    """Per-direction population subsets actually read from a halo slab.

    The padded pull stream sources direction ``i`` from the halo slab at
    offset ``off`` exactly when ``c_i[ax] == -off[ax]`` on every axis
    where ``off`` is nonzero (unsplit axes are unconstrained): the
    populations flying *into* the block from that neighbor.  For D3Q19
    that is 5 populations per face and 1 per edge (no direction has three
    nonzero components, so corner slabs are never read at all).
    """
    packed: dict[tuple[int, int, int], tuple[int, ...]] = {}
    for q in range(1, D3Q19.Q):
        off = tuple(int(v) for v in D3Q19.c[q])
        qs = tuple(
            i
            for i in range(1, D3Q19.Q)
            if all(
                int(D3Q19.c[i][ax]) == -off[ax]
                for ax in range(3)
                if off[ax] != 0
            )
        )
        packed[off] = qs
    return packed


#: offset -> population indices the pull stream reads from that halo slab.
PACKED_QS = _build_packed_qs()


@dataclass
class CommCounters:
    """Cumulative communication totals.

    ``messages`` counts *coalesced* per-neighbor-pair messages — all the
    direction slabs two ranks exchange in one fill ride in one packed
    buffer, which is what an MPI implementation would post and what the
    Fig. 8 latency model should count.  ``slabs`` keeps the raw
    q-direction slab count for comparison (the pre-coalescing number).
    """

    bytes_sent: int = 0
    messages: int = 0
    slabs: int = 0
    by_rank: dict = field(default_factory=dict)

    def add(self, rank: int, nbytes: int, slabs: int = 1) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.slabs += int(slabs)
        self.by_rank[rank] = self.by_rank.get(rank, 0) + nbytes


def fill_rank_halo(
    rank: int,
    arrays: list[np.ndarray],
    decomp: BlockDecomposition,
    pack: bool = False,
) -> list[tuple[int, int, int]]:
    """Fill one rank's halo rim from its neighbors' interiors.

    ``arrays[r]`` has shape (C, lx+2, ly+2, lz+2) for rank r.  With
    ``pack=True`` only the :data:`PACKED_QS` populations of each slab are
    copied (requires ``C == 19``); the skipped entries are stale but the
    pull stream never reads them.  Returns the would-be network transfers
    as ``(dst_rank, src_rank, nbytes)`` triples — one per direction slab,
    so the accountant can both count raw slabs and coalesce per neighbor
    pair; self-wrap copies on unsplit periodic axes are performed but not
    reported.
    """
    arr = arrays[rank]
    if pack and arr.shape[0] != D3Q19.Q:
        raise ValueError(
            "packed halo fill needs all 19 population channels; got "
            f"{arr.shape[0]}"
        )
    transfers: list[tuple[int, int, int]] = []
    for q in range(1, D3Q19.Q):
        off = tuple(int(v) for v in D3Q19.c[q])
        nb = decomp.neighbor(rank, off)
        if nb is None:
            continue
        src = arrays[nb]
        # Source slab: neighbor's interior layer adjacent to us;
        # destination: our halo layer in direction `off`.
        src_sl: list[slice] = []
        dst_sl: list[slice] = []
        for ax in range(3):
            o = off[ax]
            if o == 0:
                src_sl.append(slice(1, src.shape[ax + 1] - 1))
                dst_sl.append(slice(1, arr.shape[ax + 1] - 1))
            elif o > 0:
                # Halo on our high face comes from the neighbor's
                # low interior layer.
                src_sl.append(slice(1, 2))
                dst_sl.append(slice(arr.shape[ax + 1] - 1, arr.shape[ax + 1]))
            else:
                src_sl.append(slice(src.shape[ax + 1] - 2, src.shape[ax + 1] - 1))
                dst_sl.append(slice(0, 1))
        src_sp = tuple(src_sl)
        dst_sp = tuple(dst_sl)
        if pack:
            # One plain slab copy per packed population: no fancy-index
            # temporaries, and the unpacked entries keep whatever they
            # held (never read by the stream).
            nbytes = 0
            for qi in PACKED_QS[off]:
                chunk = src[qi][src_sp]
                arr[qi][dst_sp] = chunk
                nbytes += chunk.nbytes
        else:
            chunk = src[(slice(None),) + src_sp]
            arr[(slice(None),) + dst_sp] = chunk
            nbytes = chunk.nbytes
        if nb != rank:  # self-wrap copies are not network traffic
            transfers.append((rank, nb, nbytes))
    return transfers


class HaloAccountant:
    """Performs and accounts halo exchanges over a block decomposition.

    Local arrays are padded by one node on every face; the exchange fills
    each rank's halo from the neighbor's outermost interior layer, with
    periodic wrap handled by the decomposition's neighbor map.

    Counters are cumulative; :meth:`reset` zeroes them so a solver reused
    across bench phases reports correct per-step averages.  The most
    recent exchange's totals are always available as
    ``last_exchange_bytes`` / ``last_exchange_messages`` /
    ``last_exchange_slabs``.
    """

    def __init__(self, decomp: BlockDecomposition):
        self.decomp = decomp
        self.counters = CommCounters()
        self.last_exchange_bytes = 0
        self.last_exchange_messages = 0
        self.last_exchange_slabs = 0

    def exchange(self, locals_: list[np.ndarray], pack: bool = False) -> None:
        """Fill halos of all ranks' padded arrays, counting traffic.

        ``locals_[r]`` has shape (C, lx+2, ly+2, lz+2) for rank r.
        """
        transfers: list[tuple[int, int, int]] = []
        for rank in range(len(locals_)):
            transfers.extend(fill_rank_halo(rank, locals_, self.decomp, pack))
        self.record(transfers)

    def record(self, transfers: list[tuple[int, int, int]]) -> None:
        """Fold externally performed transfers into the counters.

        The executor backends fill halos rank-parallel (possibly in worker
        processes) and hand the per-slab records back here so the
        accounting is identical to an in-process :meth:`exchange`.  Slabs
        between the same ``(dst, src)`` pair coalesce into one message
        (they ship as one packed buffer); ``by_rank`` stays keyed by the
        source neighbor.
        """
        coalesced: dict[tuple[int, int], list[int]] = {}
        for dst, src, nbytes in transfers:
            entry = coalesced.get((dst, src))
            if entry is None:
                coalesced[(dst, src)] = [nbytes, 1]
            else:
                entry[0] += nbytes
                entry[1] += 1
        for (dst, src), (nbytes, slabs) in coalesced.items():
            self.counters.add(src, nbytes, slabs=slabs)
        self.last_exchange_bytes = sum(t[2] for t in transfers)
        self.last_exchange_messages = len(coalesced)
        self.last_exchange_slabs = len(transfers)

    def reset(self) -> None:
        """Zero the cumulative counters (start of a new bench phase)."""
        self.counters = CommCounters()
        self.last_exchange_bytes = 0
        self.last_exchange_messages = 0
        self.last_exchange_slabs = 0

    # Backwards-compatible alias.
    reset_counters = reset
