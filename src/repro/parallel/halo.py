"""Halo exchange with byte/message accounting.

The distributed solver keeps each rank's lattice in a padded local array
(one-node halo).  :func:`fill_rank_halo` performs one rank's fill by
direct array copies (the "network" is memory — plain ndarrays for the
serial/threads backends, ``shared_memory`` views for the processes
backend) while reporting the bytes each transfer would ship over a real
interconnect.  :class:`HaloAccountant` wraps it with cumulative counters
that feed the scaling model (Figs. 7-8).

The fill is race-free under rank-parallel execution: rank ``r`` writes
only its *own* halo rim and reads only its neighbors' outermost
*interior* layers, so no two ranks touch the same memory with a write.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..lbm.lattice import D3Q19
from .decomposition import BlockDecomposition


@dataclass
class CommCounters:
    """Cumulative communication totals."""

    bytes_sent: int = 0
    messages: int = 0
    by_rank: dict = field(default_factory=dict)

    def add(self, rank: int, nbytes: int) -> None:
        self.bytes_sent += nbytes
        self.messages += 1
        self.by_rank[rank] = self.by_rank.get(rank, 0) + nbytes


def fill_rank_halo(
    rank: int,
    arrays: list[np.ndarray],
    decomp: BlockDecomposition,
) -> list[tuple[int, int]]:
    """Fill one rank's halo rim from its neighbors' interiors.

    ``arrays[r]`` has shape (C, lx+2, ly+2, lz+2) for rank r.  Returns the
    would-be network transfers as ``(neighbor, nbytes)`` pairs; self-wrap
    copies on unsplit periodic axes are performed but not reported.
    """
    arr = arrays[rank]
    transfers: list[tuple[int, int]] = []
    for q in range(1, D3Q19.Q):
        off = tuple(int(v) for v in D3Q19.c[q])
        nb = decomp.neighbor(rank, off)
        if nb is None:
            continue
        src = arrays[nb]
        # Source slab: neighbor's interior layer adjacent to us;
        # destination: our halo layer in direction `off`.
        src_sl: list[slice] = [slice(None)]
        dst_sl: list[slice] = [slice(None)]
        for ax in range(3):
            o = off[ax]
            if o == 0:
                src_sl.append(slice(1, src.shape[ax + 1] - 1))
                dst_sl.append(slice(1, arr.shape[ax + 1] - 1))
            elif o > 0:
                # Halo on our high face comes from the neighbor's
                # low interior layer.
                src_sl.append(slice(1, 2))
                dst_sl.append(slice(arr.shape[ax + 1] - 1, arr.shape[ax + 1]))
            else:
                src_sl.append(slice(src.shape[ax + 1] - 2, src.shape[ax + 1] - 1))
                dst_sl.append(slice(0, 1))
        chunk = src[tuple(src_sl)]
        arr[tuple(dst_sl)] = chunk
        if nb != rank:  # self-wrap copies are not network traffic
            transfers.append((nb, chunk.nbytes))
    return transfers


class HaloAccountant:
    """Performs and accounts halo exchanges over a block decomposition.

    Local arrays are padded by one node on every face; the exchange fills
    each rank's halo from the neighbor's outermost interior layer, with
    periodic wrap handled by the decomposition's neighbor map.

    Counters are cumulative; :meth:`reset` zeroes them so a solver reused
    across bench phases reports correct per-step averages.  The most
    recent exchange's totals are always available as
    ``last_exchange_bytes`` / ``last_exchange_messages``.
    """

    def __init__(self, decomp: BlockDecomposition):
        self.decomp = decomp
        self.counters = CommCounters()
        self.last_exchange_bytes = 0
        self.last_exchange_messages = 0

    def exchange(self, locals_: list[np.ndarray]) -> None:
        """Fill halos of all ranks' padded arrays, counting traffic.

        ``locals_[r]`` has shape (C, lx+2, ly+2, lz+2) for rank r.
        """
        transfers: list[tuple[int, int]] = []
        for rank in range(len(locals_)):
            transfers.extend(fill_rank_halo(rank, locals_, self.decomp))
        self.record(transfers)

    def record(self, transfers: list[tuple[int, int]]) -> None:
        """Fold externally performed transfers into the counters.

        The executor backends fill halos rank-parallel (possibly in worker
        processes) and hand the per-transfer records back here so the
        accounting is identical to an in-process :meth:`exchange`.
        """
        for nb, nbytes in transfers:
            self.counters.add(nb, nbytes)
        self.last_exchange_bytes = sum(b for _, b in transfers)
        self.last_exchange_messages = len(transfers)

    def reset(self) -> None:
        """Zero the cumulative counters (start of a new bench phase)."""
        self.counters = CommCounters()
        self.last_exchange_bytes = 0
        self.last_exchange_messages = 0

    # Backwards-compatible alias.
    reset_counters = reset
