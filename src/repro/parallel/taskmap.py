"""CPU/GPU task mapping (Section 2.4.4 of the paper).

On Summit the paper places 42 MPI tasks per node: 36 drive the coarse
bulk fluid on the POWER9 cores and 6 drive the cell-resolved window on
the V100 GPUs.  :class:`TaskMap` captures that split and derives the
per-task workloads the scaling model consumes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TaskMap:
    """Placement of bulk and window tasks across nodes."""

    n_nodes: int
    cpu_tasks_per_node: int
    gpu_tasks_per_node: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("need at least one node")
        if self.cpu_tasks_per_node < 0 or self.gpu_tasks_per_node < 0:
            raise ValueError("task counts must be non-negative")

    @property
    def n_cpu_tasks(self) -> int:
        return self.n_nodes * self.cpu_tasks_per_node

    @property
    def n_gpu_tasks(self) -> int:
        return self.n_nodes * self.gpu_tasks_per_node

    @property
    def tasks_per_node(self) -> int:
        return self.cpu_tasks_per_node + self.gpu_tasks_per_node

    def bulk_points_per_task(self, total_bulk_points: float) -> float:
        """Coarse lattice nodes owned by each CPU task."""
        if self.n_cpu_tasks == 0:
            raise ValueError("no CPU tasks to host the bulk fluid")
        return total_bulk_points / self.n_cpu_tasks

    def window_points_per_task(self, total_window_points: float) -> float:
        """Fine lattice nodes owned by each GPU task."""
        if self.n_gpu_tasks == 0:
            raise ValueError("no GPU tasks to host the window")
        return total_window_points / self.n_gpu_tasks

    def cells_per_task(self, total_cells: float) -> float:
        if self.n_gpu_tasks == 0:
            raise ValueError("no GPU tasks to host cells")
        return total_cells / self.n_gpu_tasks


def summit_task_map(n_nodes: int) -> TaskMap:
    """The paper's Summit configuration: 36 CPU + 6 GPU tasks per node."""
    return TaskMap(
        n_nodes=n_nodes, cpu_tasks_per_node=36, gpu_tasks_per_node=6
    )
