"""Block domain decomposition for the virtual parallel runtime.

Splits a global lattice into per-rank boxes, mirroring the MPI layout of
HARVEY: near-cubic blocks chosen to minimize halo surface (the same
criterion as MPI_Dims_create), with face/edge/corner neighbor topology
derived from the D3Q19 stencil.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..lbm.lattice import D3Q19


def balanced_dims(n_tasks: int, shape: tuple[int, int, int]) -> tuple[int, int, int]:
    """Factor ``n_tasks`` into a 3D process grid minimizing halo surface.

    Enumerates all ordered factorizations px*py*pz = n_tasks (n_tasks is
    at most a few thousand in practice) and picks the one minimizing the
    total surface area of a local block.
    """
    if n_tasks < 1:
        raise ValueError("need at least one task")
    best = None
    best_cost = np.inf
    for px in range(1, n_tasks + 1):
        if n_tasks % px:
            continue
        rest = n_tasks // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            if px > shape[0] or py > shape[1] or pz > shape[2]:
                continue
            lx = shape[0] / px
            ly = shape[1] / py
            lz = shape[2] / pz
            cost = lx * ly + ly * lz + lz * lx
            if cost < best_cost:
                best_cost = cost
                best = (px, py, pz)
    if best is None:
        raise ValueError(
            f"cannot decompose shape {shape} into {n_tasks} non-empty blocks"
        )
    return best


def weighted_splits(
    length: int, parts: int, weight: np.ndarray | None
) -> np.ndarray:
    """Split plane positions balancing cumulative weight along one axis.

    Places the ``parts - 1`` interior planes where the cumulative weight
    crosses equal fractions of the total, then repairs strict
    monotonicity (every part keeps at least one plane of cells).  A
    ``None``, zero, or non-finite weight profile falls back to the
    uniform ``np.linspace`` planes — bitwise the legacy decomposition.
    """
    if parts > length:
        raise ValueError(f"cannot split {length} cells into {parts} parts")
    uniform = np.linspace(0, length, parts + 1).astype(np.int64)
    if weight is None or parts == 1:
        return uniform
    w = np.asarray(weight, dtype=np.float64)
    if w.shape != (length,):
        raise ValueError(
            f"weight profile has length {w.shape}, axis has {length} cells"
        )
    total = float(w.sum())
    if not np.isfinite(total) or total <= 0.0 or np.any(w < 0):
        return uniform
    cum = np.concatenate(([0.0], np.cumsum(w)))
    targets = np.linspace(0.0, total, parts + 1)[1:-1]
    cuts = np.searchsorted(cum, targets, side="left").astype(np.int64)
    splits = np.empty(parts + 1, dtype=np.int64)
    splits[0] = 0
    splits[1:-1] = cuts
    splits[-1] = length
    # Repair strict monotonicity: forward pass guarantees >= 1 cell per
    # part from the left, backward pass from the right (parts <= length
    # makes both passes satisfiable simultaneously).
    for i in range(1, parts):
        if splits[i] <= splits[i - 1]:
            splits[i] = splits[i - 1] + 1
    for i in range(parts - 1, 0, -1):
        if splits[i] >= splits[i + 1]:
            splits[i] = splits[i + 1] - 1
    return splits


def _axis_weights(
    shape: tuple[int, int, int], weights
) -> list[np.ndarray | None]:
    """Normalize a weights request into three per-axis 1-D profiles.

    Accepts ``None`` (uniform), a 3-D array over the global lattice
    (e.g. the fluid mask ``~solid`` — reduced to per-axis marginals), or
    a sequence of three 1-D arrays / ``None`` entries.
    """
    if weights is None:
        return [None, None, None]
    if isinstance(weights, np.ndarray) and weights.ndim == 3:
        if weights.shape != tuple(shape):
            raise ValueError(
                f"3-D weights shape {weights.shape} != lattice {shape}"
            )
        w = weights.astype(np.float64, copy=False)
        return [
            w.sum(axis=tuple(ax for ax in range(3) if ax != d))
            for d in range(3)
        ]
    per_axis = list(weights)
    if len(per_axis) != 3:
        raise ValueError(
            "weights must be None, a 3-D array, or three per-axis profiles"
        )
    return [
        None if w is None else np.asarray(w, dtype=np.float64)
        for w in per_axis
    ]


@dataclass(frozen=True)
class _Block:
    rank: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]  # inclusive global start
    hi: tuple[int, int, int]  # exclusive global end


class BlockDecomposition:
    """Cartesian decomposition of a global lattice over ranks.

    Parameters
    ----------
    shape:
        Global lattice shape.
    n_tasks:
        Number of ranks; the process grid is chosen by
        :func:`balanced_dims` unless ``dims`` is given.
    periodic:
        Per-axis periodicity (affects neighbor wrap-around).
    weights:
        Optional load profile placing the split planes by cumulative
        weight instead of uniformly: a 3-D array over the global lattice
        (e.g. the fluid mask ``~grid.solid`` — walls then stop inflating
        the fluid-node count of wall-adjacent ranks) or three per-axis
        1-D profiles.  ``None`` keeps the legacy uniform planes bitwise.
        The process-grid *dims* are still chosen by
        :func:`balanced_dims`' surface cost — weights move planes, not
        the grid shape.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        n_tasks: int,
        dims: tuple[int, int, int] | None = None,
        periodic: tuple[bool, bool, bool] = (True, True, True),
        weights=None,
    ) -> None:
        self.shape = tuple(shape)
        self.dims = dims if dims is not None else balanced_dims(n_tasks, shape)
        if int(np.prod(self.dims)) != n_tasks:
            raise ValueError("dims do not multiply to the task count")
        for d in range(3):
            if self.dims[d] > self.shape[d]:
                raise ValueError(
                    f"dims {tuple(self.dims)} oversplit axis {d} of "
                    f"shape {self.shape}"
                )
        self.periodic = tuple(periodic)
        self.n_tasks = n_tasks
        self.blocks: list[_Block] = []
        axis_w = _axis_weights(self.shape, weights)
        splits = [
            weighted_splits(self.shape[d], self.dims[d], axis_w[d])
            for d in range(3)
        ]
        rank = 0
        for i in range(self.dims[0]):
            for j in range(self.dims[1]):
                for k in range(self.dims[2]):
                    lo = (splits[0][i], splits[1][j], splits[2][k])
                    hi = (splits[0][i + 1], splits[1][j + 1], splits[2][k + 1])
                    self.blocks.append(_Block(rank, (i, j, k), lo, hi))
                    rank += 1
        self.splits = splits
        self._rank_by_coords = {b.coords: b.rank for b in self.blocks}

    def block(self, rank: int) -> _Block:
        return self.blocks[rank]

    def local_shape(self, rank: int) -> tuple[int, int, int]:
        b = self.blocks[rank]
        return tuple(int(b.hi[d] - b.lo[d]) for d in range(3))

    def neighbor(self, rank: int, offset: tuple[int, int, int]) -> int | None:
        """Rank of the neighbor at a coordinate offset, or None off-grid."""
        coords = list(self.blocks[rank].coords)
        for d in range(3):
            c = coords[d] + offset[d]
            if self.periodic[d]:
                c %= self.dims[d]
            elif not 0 <= c < self.dims[d]:
                return None
            coords[d] = c
        return self._rank_by_coords[tuple(coords)]

    def neighbors(self, rank: int) -> dict[tuple[int, int, int], int]:
        """All distinct D3Q19 neighbor ranks keyed by direction offset."""
        out: dict[tuple[int, int, int], int] = {}
        for q in range(1, D3Q19.Q):
            off = tuple(int(v) for v in D3Q19.c[q])
            nb = self.neighbor(rank, off)
            if nb is not None and nb != rank:
                out[off] = nb
        return out

    def neighbor_count_histogram(self) -> dict[int, int]:
        """Histogram of distinct-neighbor counts over ranks.

        Reproduces the paper's weak-scaling observation: below 8 nodes the
        decomposition leaves some axes unsplit, so ranks see fewer
        neighbors and communication volume is not yet 'full'.
        """
        hist: dict[int, int] = {}
        for b in self.blocks:
            n = len(set(self.neighbors(b.rank).values()))
            hist[n] = hist.get(n, 0) + 1
        return hist

    def halo_nodes(self, rank: int, width: int = 1) -> int:
        """Number of halo nodes a rank exchanges per step (all directions)."""
        local = self.local_shape(rank)
        padded = np.prod([local[d] + 2 * width for d in range(3)])
        return int(padded - np.prod(local))

    def rebalance_hint(
        self, seconds_by_rank: dict[int, float]
    ) -> list[np.ndarray]:
        """Fold measured per-rank seconds into per-axis split weights.

        Each rank's measured seconds (e.g. summed
        ``DistributedLBMSolver.rank_phase_seconds``) are spread uniformly
        over its extent on every axis; the returned three 1-D profiles
        feed the ``weights`` parameter of a fresh decomposition, moving
        planes toward the slow ranks.  Ranks missing from the dict
        contribute nothing (their cells keep whatever weight overlapping
        ranks give them).
        """
        hints = [np.zeros(self.shape[d], dtype=np.float64) for d in range(3)]
        for rank, seconds in seconds_by_rank.items():
            b = self.blocks[rank]
            s = float(seconds)
            if s <= 0.0:
                continue
            for d in range(3):
                extent = b.hi[d] - b.lo[d]
                hints[d][b.lo[d] : b.hi[d]] += s / extent
        return hints
