"""Measured wall-clock throughput of the parallel LBM backends.

The scaling benches (Figs. 7-8) historically reported *modeled* numbers
only; these helpers time the real executor backends so the benches and
the ``python -m repro scaling --measured`` CLI record measured
steps-per-second curves next to the model.  Results carry the machine's
CPU count — a single-core box cannot show multi-worker speedup, and the
artifact should make that legible rather than hide it.
"""

from __future__ import annotations

import os
from time import perf_counter

import numpy as np

from .distributed import DistributedLBMSolver


def _seeded_f(shape: tuple[int, int, int], tau: float, seed: int = 0) -> np.ndarray:
    """A perturbed-equilibrium global distribution array for timing runs."""
    from ..lbm import Grid

    rng = np.random.default_rng(seed)
    g = Grid(tuple(shape), tau=tau)
    g.init_equilibrium(
        1.0 + 0.02 * rng.standard_normal(shape),
        0.02 * rng.standard_normal((3,) + tuple(shape)),
    )
    return g.f


def measure_throughput(
    shape: tuple[int, int, int],
    n_tasks: int,
    backend: str = "serial",
    n_workers: int | None = None,
    halo_mode: str = "exchange",
    steps: int = 10,
    warmup: int = 2,
    tau: float = 0.9,
    seed: int = 0,
    halo_pack: bool | None = None,
    overlap: bool | None = None,
    dims: tuple[int, int, int] | None = None,
    weighted_split: bool = False,
    solid: np.ndarray | None = None,
) -> dict:
    """Time ``steps`` distributed LBM steps under one backend config.

    Returns a record with wall seconds, steps/s, per-step comm volume
    and the resolved backend/worker configuration.  ``halo_pack`` /
    ``overlap`` select the packed-halo exchange and fused step pipeline
    (``None`` defers to the ``REPRO_HALO_PACK`` / ``REPRO_DIST_OVERLAP``
    env knobs); ``dims`` forces a process grid and ``weighted_split``
    places split planes by fluid-node count when a ``solid`` map is
    given.
    """
    f0 = _seeded_f(shape, tau, seed)
    with DistributedLBMSolver(
        shape, tau=tau, n_tasks=n_tasks,
        backend=backend, n_workers=n_workers, halo_mode=halo_mode,
        halo_pack=halo_pack, overlap=overlap, dims=dims,
        weighted_split=weighted_split, solid=solid,
    ) as d:
        d.scatter(f0)
        if warmup:
            d.step(warmup)
        d.reset_counters()
        t0 = perf_counter()
        d.step(steps)
        wall_s = perf_counter() - t0
        return {
            "backend": d.backend,
            "n_workers": d.n_workers,
            "halo_mode": d.halo_mode,
            "halo_pack": d.halo_pack,
            "overlap": d.overlap,
            "weighted_split": d.weighted_split,
            "dims": list(d.decomp.dims),
            "n_tasks": n_tasks,
            "shape": list(shape),
            "steps": steps,
            "wall_s": wall_s,
            "steps_per_s": steps / wall_s,
            "ms_per_step": 1e3 * wall_s / steps,
            "bytes_per_step": d.bytes_per_step(),
            "messages_per_step": d.last_step_messages,
            "slabs_per_step": d.last_step_slabs,
        }


def halo_pack_comparison(
    shape: tuple[int, int, int],
    n_tasks: int,
    backend: str = "serial",
    n_workers: int | None = None,
    steps: int = 10,
    warmup: int = 2,
    tau: float = 0.9,
) -> dict:
    """Full-rim vs direction-aware packed halo exchange, side by side.

    The packed exchange ships only the populations whose lattice vector
    points into the receiving block (5 per face, 1 per edge, never the
    corners D3Q19 cannot read), so ``bytes_reduction`` approaches
    ``(2*19 + ...)/(2*5 + ...)`` ≈ 3.8-4.5x for cubic blocks — the Fig. 7
    comm-volume term.
    """
    full = measure_throughput(
        shape, n_tasks, backend=backend, n_workers=n_workers,
        halo_mode="exchange", steps=steps, warmup=warmup, tau=tau,
        halo_pack=False,
    )
    packed = measure_throughput(
        shape, n_tasks, backend=backend, n_workers=n_workers,
        halo_mode="exchange", steps=steps, warmup=warmup, tau=tau,
        halo_pack=True,
    )
    return {
        "shape": list(shape),
        "n_tasks": n_tasks,
        "full": full,
        "packed": packed,
        "bytes_reduction": (
            full["bytes_per_step"] / packed["bytes_per_step"]
            if packed["bytes_per_step"] else float("inf")
        ),
    }


def overlap_comparison(
    shape: tuple[int, int, int],
    n_tasks: int,
    backend: str = "serial",
    n_workers: int | None = None,
    halo_mode: str = "exchange",
    halo_pack: bool | None = None,
    steps: int = 10,
    warmup: int = 2,
    tau: float = 0.9,
) -> dict:
    """Barriered (3 round-trips/step) vs fused (1) pipeline, side by side.

    ``speedup`` is the barriered/fused ms-per-step ratio; on the
    processes backend it reflects the 3-to-1 pipe round-trip cut plus
    the rim-first exchange overlap.
    """
    barriered = measure_throughput(
        shape, n_tasks, backend=backend, n_workers=n_workers,
        halo_mode=halo_mode, steps=steps, warmup=warmup, tau=tau,
        halo_pack=halo_pack, overlap=False,
    )
    fused = measure_throughput(
        shape, n_tasks, backend=backend, n_workers=n_workers,
        halo_mode=halo_mode, steps=steps, warmup=warmup, tau=tau,
        halo_pack=halo_pack, overlap=True,
    )
    return {
        "shape": list(shape),
        "n_tasks": n_tasks,
        "halo_mode": halo_mode,
        "barriered": barriered,
        "fused": fused,
        "speedup": (
            barriered["ms_per_step"] / fused["ms_per_step"]
            if fused["ms_per_step"] else float("inf")
        ),
    }


def measured_scaling_curve(
    shape: tuple[int, int, int],
    n_tasks: int,
    worker_counts: tuple[int, ...] = (1, 2, 4),
    backends: tuple[str, ...] = ("threads", "processes"),
    halo_mode: str = "exchange",
    steps: int = 10,
    warmup: int = 2,
    tau: float = 0.9,
    halo_pack: bool | None = None,
    overlap: bool | None = None,
) -> dict:
    """Serial reference plus per-backend worker sweeps on one lattice.

    Speedups are wall-clock ratios against the serial backend on the
    *same* decomposition, i.e. they isolate the executor, not the
    domain split.
    """
    serial = measure_throughput(
        shape, n_tasks, backend="serial", halo_mode=halo_mode,
        steps=steps, warmup=warmup, tau=tau,
        halo_pack=halo_pack, overlap=overlap,
    )
    curves: dict[str, dict[str, dict]] = {}
    for backend in backends:
        curves[backend] = {}
        for w in worker_counts:
            if w > n_tasks:
                continue
            r = measure_throughput(
                shape, n_tasks, backend=backend, n_workers=w,
                halo_mode=halo_mode, steps=steps, warmup=warmup, tau=tau,
                halo_pack=halo_pack, overlap=overlap,
            )
            r["speedup_vs_serial"] = r["steps_per_s"] / serial["steps_per_s"]
            curves[backend][str(w)] = r
    best = max(
        (r["speedup_vs_serial"] for c in curves.values() for r in c.values()),
        default=0.0,
    )
    return {
        "shape": list(shape),
        "n_tasks": n_tasks,
        "halo_mode": halo_mode,
        "steps": steps,
        "cpu_count": os.cpu_count(),
        "serial": serial,
        "curves": curves,
        "best_speedup_vs_serial": best,
    }


def measured_weak_scaling(
    block: tuple[int, int, int] = (16, 16, 16),
    task_counts: tuple[int, ...] = (1, 2, 4),
    backend: str = "serial",
    n_workers: int | None = None,
    halo_mode: str = "exchange",
    steps: int = 5,
    warmup: int = 1,
    tau: float = 0.9,
    halo_pack: bool | None = None,
    overlap: bool | None = None,
) -> dict:
    """Fixed per-rank block, growing lattice: the Fig. 8 premise, timed.

    With the serial backend the efficiency column shows the pure
    work-growth baseline; with a pooled backend and one worker per rank
    it shows how much of the growth the executor hides.
    """
    points: dict[str, dict] = {}
    t1 = None
    for n in task_counts:
        # Grow the lattice by doubling axes round-robin so each rank
        # keeps (roughly) the same block.
        dims = [1, 1, 1]
        m, ax = n, 0
        while m > 1:
            for p in (2, 3, 5, 7, 11, 13):
                if m % p == 0:
                    dims[ax % 3] *= p
                    m //= p
                    ax += 1
                    break
            else:
                dims[ax % 3] *= m
                m = 1
        shape = tuple(block[i] * dims[i] for i in range(3))
        r = measure_throughput(
            shape, n, backend=backend, n_workers=n_workers,
            halo_mode=halo_mode, steps=steps, warmup=warmup, tau=tau,
            halo_pack=halo_pack, overlap=overlap,
        )
        if t1 is None:
            t1 = r["wall_s"]
        r["efficiency_vs_1"] = t1 / r["wall_s"]
        points[str(n)] = r
    return {
        "block": list(block),
        "backend": backend,
        "halo_mode": halo_mode,
        "steps": steps,
        "cpu_count": os.cpu_count(),
        "points": points,
    }
