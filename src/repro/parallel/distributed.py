"""Distributed LBM solver over the virtual parallel runtime.

Each rank owns a block of the global lattice in a one-node-padded local
array; a step is collide -> halo exchange (post-collision populations) ->
local pull streaming.  For a fully periodic lattice this reproduces the
single-grid solver bit-for-bit (asserted in the test suite), while the
:class:`~repro.parallel.halo.HaloAccountant` counters measure exactly the
communication volume a real MPI run would ship — the quantity the
strong-scaling breakdown of Fig. 7 hinges on.
"""

from __future__ import annotations

import numpy as np

from ..lbm.collision import collide_bgk
from ..lbm.lattice import D3Q19
from .decomposition import BlockDecomposition
from .halo import HaloAccountant


class DistributedLBMSolver:
    """Periodic LBM stepped as ``n_tasks`` cooperating ranks.

    Parameters
    ----------
    shape:
        Global lattice shape (fully periodic).
    tau:
        Uniform relaxation time.
    n_tasks:
        Number of virtual ranks.
    """

    def __init__(self, shape: tuple[int, int, int], tau: float, n_tasks: int):
        self.shape = tuple(shape)
        self.tau = float(tau)
        self.decomp = BlockDecomposition(shape, n_tasks)
        self.halo = HaloAccountant(self.decomp)
        self.locals: list[np.ndarray] = []
        self._scratch: list[np.ndarray] = []
        for rank in range(n_tasks):
            lx, ly, lz = self.decomp.local_shape(rank)
            self.locals.append(np.zeros((D3Q19.Q, lx + 2, ly + 2, lz + 2)))
            self._scratch.append(np.zeros_like(self.locals[-1]))
        self.step_count = 0

    # ------------------------------------------------------------------
    def scatter(self, f_global: np.ndarray) -> None:
        """Distribute a global distribution array to the rank blocks."""
        if f_global.shape != (D3Q19.Q,) + self.shape:
            raise ValueError("global array shape mismatch")
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            arr[:, 1:-1, 1:-1, 1:-1] = f_global[
                :, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]
            ]

    def gather(self) -> np.ndarray:
        """Reassemble the global distribution array from all ranks."""
        out = np.empty((D3Q19.Q,) + self.shape)
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            out[:, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]] = arr[
                :, 1:-1, 1:-1, 1:-1
            ]
        return out

    # ------------------------------------------------------------------
    def step(self, n: int = 1) -> None:
        for _ in range(n):
            # Collide locally (interior only; halos are stale pre-exchange).
            for rank, arr in enumerate(self.locals):
                interior = arr[:, 1:-1, 1:-1, 1:-1]
                post, _, _ = collide_bgk(np.ascontiguousarray(interior), self.tau)
                self._scratch[rank][:, 1:-1, 1:-1, 1:-1] = post
            # Ship post-collision halos.
            self.halo.exchange(self._scratch)
            # Pull-stream from the padded arrays.
            for rank, post in enumerate(self._scratch):
                arr = self.locals[rank]
                for q in range(D3Q19.Q):
                    cx, cy, cz = D3Q19.c[q]
                    arr[q, 1:-1, 1:-1, 1:-1] = post[
                        q,
                        1 - cx : post.shape[1] - 1 - cx,
                        1 - cy : post.shape[2] - 1 - cy,
                        1 - cz : post.shape[3] - 1 - cz,
                    ]
            self.step_count += 1

    # ------------------------------------------------------------------
    def bytes_per_step(self) -> float:
        """Average bytes shipped per step so far (all ranks combined)."""
        if self.step_count == 0:
            return 0.0
        return self.halo.counters.bytes_sent / self.step_count
