"""Distributed LBM solver over the parallel rank runtime.

Each rank owns a block of the global lattice in a one-node-padded local
array; a step is run by an executor backend (``serial`` | ``threads`` |
``processes``; see :mod:`repro.parallel.executor`) in one of two
pipelines:

* **barriered** (default) — three barrier-separated rank-parallel
  phases (collide, halo, stream);
* **fused** (``overlap=True`` / ``REPRO_DIST_OVERLAP``) — one executor
  round-trip per step with a single worker-side barrier: ranks collide
  their one-node rim first, the rim halo ships while interior collide
  proceeds, then stream runs.

Two halo modes realize the same step:

* ``exchange``  — collide, then ship post-collision halo layers from
  neighbors; with ``halo_pack=True`` / ``REPRO_HALO_PACK`` only the
  populations the pull stream actually reads are shipped (5 per face,
  1 per edge — a ~3-4x volume cut, see
  :data:`repro.parallel.halo.PACKED_QS`);
* ``recompute`` — pre-exchange the *pre-collision* ``f`` rim, then
  redundantly collide the one-node ghost rim locally (the paper's
  Section 2.4.4 recompute-instead-of-communicate trick: trade a sliver
  of duplicate flops for never shipping post-collision data).  The
  ghost collide couples all 19 populations, so this mode keeps the
  full-``f`` rim exchange regardless of ``halo_pack``.

For a fully periodic lattice every backend × halo-mode × packing ×
overlap combination reproduces the single-grid solver bit-for-bit
(asserted in the test suite) — with walls (``solid=``), bitwise on the
fluid nodes for non-periodic decompositions too — and the
:class:`~repro.parallel.halo.HaloAccountant` counters measure exactly
the communication volume a real MPI run would ship — the quantity the
strong-scaling breakdown of Fig. 7 hinges on.
"""

from __future__ import annotations

import os

import numpy as np

from ..lbm.lattice import D3Q19
from ..telemetry import get_telemetry
from .decomposition import BlockDecomposition
from .executor import RankBlocks, make_executor, resolve_backend
from .halo import HaloAccountant

#: Supported halo handling modes.
HALO_MODES = ("exchange", "recompute")

#: Environment variable forcing direction-aware halo packing process-wide.
ENV_HALO_PACK = "REPRO_HALO_PACK"

#: Environment variable forcing the fused (overlapped) step pipeline.
ENV_DIST_OVERLAP = "REPRO_DIST_OVERLAP"

_TRUTHY = frozenset(("1", "true", "yes", "on"))
_FALSY = frozenset(("0", "false", "no", "off"))


def _resolve_env_flag(env_var: str, arg: bool | None) -> bool:
    """Boolean knob resolution, ``REPRO_KERNELS`` precedence: env wins.

    The environment variable, when set (and non-empty), **wins over**
    the constructor argument, so a CI leg or an operator can force every
    solver in a process onto one configuration without touching call
    sites; unset/empty env falls back to the argument (default False).
    """
    env = os.environ.get(env_var)
    if env:
        value = env.strip().lower()
        if value in _TRUTHY:
            return True
        if value in _FALSY:
            return False
        raise ValueError(
            f"invalid {env_var}={env!r}; use one of "
            f"{sorted(_TRUTHY)} / {sorted(_FALSY)}"
        )
    return bool(arg) if arg is not None else False


def resolve_halo_pack(halo_pack: bool | None = None) -> bool:
    """Resolve the direction-aware halo packing knob (env wins)."""
    return _resolve_env_flag(ENV_HALO_PACK, halo_pack)


def resolve_dist_overlap(overlap: bool | None = None) -> bool:
    """Resolve the fused-step-pipeline knob (env wins)."""
    return _resolve_env_flag(ENV_DIST_OVERLAP, overlap)


class DistributedLBMSolver:
    """LBM lattice stepped as ``n_tasks`` cooperating ranks.

    Parameters
    ----------
    shape:
        Global lattice shape (periodic unless ``periodic`` says not).
    tau:
        Uniform relaxation time.
    n_tasks:
        Number of ranks (subdomains).
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"``; ``None`` reads
        ``REPRO_PARALLEL_BACKEND`` (default ``serial``).
    n_workers:
        Worker count for the pooled backends; ``None`` reads
        ``REPRO_PARALLEL_WORKERS`` (default: one per CPU), capped at
        ``n_tasks``.
    halo_mode:
        ``"exchange"`` (ship post-collision halos) or ``"recompute"``
        (pre-exchange ``f`` and redundantly collide the ghost rim).
    kernels:
        Kernels backend for the rank-local collide/stream
        (``"numpy"`` | ``"numba"``; ``None`` resolves via
        ``REPRO_KERNELS``, which also overrides an explicit argument).
    dtype:
        Compute dtype for the rank-local distribution blocks
        (``"float32"`` | ``"float64"``; ``None`` resolves via
        ``REPRO_DTYPE``, which also overrides an explicit argument —
        same policy as :class:`~repro.lbm.grid.Grid`).
    dims:
        Optional explicit process grid ``(px, py, pz)``; ``None`` picks
        the surface-minimizing factorization.
    periodic:
        Per-axis periodicity of the *decomposition*: a non-periodic axis
        has no wraparound neighbors and its outward halo is treated as
        wall (combine with an enclosing ``solid`` shell for a physical
        no-slip domain).
    solid:
        Optional global boolean wall map; walls get halfway bounce-back
        after every stream, matching the single-grid
        :class:`~repro.lbm.boundaries.BounceBackWalls` bitwise.
    weighted_split:
        Place split planes by cumulative *fluid*-node count (from
        ``~solid``) instead of uniformly, equalizing per-rank collide
        work in walled geometries.  No-op without ``solid``.
    halo_pack:
        Direction-aware halo packing (exchange mode only); ``None``
        resolves via ``REPRO_HALO_PACK``, which **wins over** an
        explicit argument (``REPRO_KERNELS`` precedence).
    overlap:
        Fused single-round-trip step pipeline; ``None`` resolves via
        ``REPRO_DIST_OVERLAP`` (env wins, same precedence).

    The processes backend holds OS resources (worker processes and
    shared-memory segments): call :meth:`close` when done, or use the
    solver as a context manager.  A GC finalizer cleans up as a safety
    net.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        tau: float,
        n_tasks: int,
        backend: str | None = None,
        n_workers: int | None = None,
        halo_mode: str = "exchange",
        kernels: str | None = None,
        dtype=None,
        dims: tuple[int, int, int] | None = None,
        periodic: tuple[bool, bool, bool] = (True, True, True),
        solid: np.ndarray | None = None,
        weighted_split: bool = False,
        halo_pack: bool | None = None,
        overlap: bool | None = None,
    ):
        self.shape = tuple(shape)
        self.tau = float(tau)
        if halo_mode not in HALO_MODES:
            raise ValueError(
                f"unknown halo_mode {halo_mode!r}; pick one of {HALO_MODES}"
            )
        self.halo_mode = halo_mode
        self.halo_pack = resolve_halo_pack(halo_pack)
        self.overlap = resolve_dist_overlap(overlap)
        self.weighted_split = bool(weighted_split)
        if solid is not None:
            solid = np.asarray(solid, dtype=bool)
            if solid.shape != self.shape:
                raise ValueError(
                    f"solid map shape {solid.shape} != lattice {self.shape}"
                )
        self.solid = solid
        weights = None
        if self.weighted_split and solid is not None:
            weights = (~solid).astype(np.float64)
        self.decomp = BlockDecomposition(
            shape, n_tasks, dims=dims, periodic=periodic, weights=weights
        )
        self.halo = HaloAccountant(self.decomp)
        self.backend, self.n_workers = resolve_backend(
            backend, n_workers, n_tasks
        )
        from ..kernels import resolve_dtype, resolve_kernels

        self.kernels = resolve_kernels(kernels)
        self.dtype = resolve_dtype(dtype)
        self.blocks = RankBlocks(
            self.decomp, shared=(self.backend == "processes"),
            dtype=self.dtype,
        )
        #: Per-rank padded local arrays (kept name-compatible with the
        #: original virtual runtime; shared-memory views under processes).
        self.locals = self.blocks.f
        self._scratch = self.blocks.post
        rank_solid = None
        if solid is not None:
            rank_solid = {
                rank: self._padded_solid(rank)
                for rank in range(n_tasks)
            }
        self.executor = make_executor(
            self.backend, self.blocks, self.tau, self.n_workers,
            kernels=self.kernels, halo_mode=self.halo_mode,
            pack=self.halo_pack, solid=rank_solid,
        )
        self.step_count = 0
        self._steps_at_reset = 0
        self.last_step_bytes = 0
        self.last_step_messages = 0
        self.last_step_slabs = 0
        self.last_overlap_efficiency = None
        #: Cumulative per-rank wall seconds by phase name.
        self.rank_phase_seconds: dict[str, dict[int, float]] = {
            "collide": {}, "halo": {}, "stream": {},
        }

    # ------------------------------------------------------------------
    def _padded_solid(self, rank: int) -> np.ndarray:
        """Rank-local solid map including the one-node halo rim.

        Periodic axes wrap the global map into the rim (the same values
        ``np.roll`` would see); beyond a non-periodic domain edge the rim
        is marked solid — outside the domain is wall.
        """
        b = self.decomp.block(rank)
        idx = []
        oob = []
        for d in range(3):
            ax = np.arange(b.lo[d] - 1, b.hi[d] + 1)
            if self.decomp.periodic[d]:
                oob.append(np.zeros(ax.size, dtype=bool))
                ax = ax % self.shape[d]
            else:
                bad = (ax < 0) | (ax >= self.shape[d])
                oob.append(bad)
                ax = np.clip(ax, 0, self.shape[d] - 1)
            idx.append(ax)
        padded = self.solid[np.ix_(*idx)].copy()
        padded[
            oob[0][:, None, None]
            | oob[1][None, :, None]
            | oob[2][None, None, :]
        ] = True
        return padded

    # ------------------------------------------------------------------
    def scatter(self, f_global: np.ndarray) -> None:
        """Distribute a global distribution array to the rank blocks."""
        if f_global.shape != (D3Q19.Q,) + self.shape:
            raise ValueError("global array shape mismatch")
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            arr[:, 1:-1, 1:-1, 1:-1] = f_global[
                :, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]
            ]

    def gather(self) -> np.ndarray:
        """Reassemble the global distribution array from all ranks."""
        out = np.empty((D3Q19.Q,) + self.shape, dtype=self.dtype)
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            out[:, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]] = arr[
                :, 1:-1, 1:-1, 1:-1
            ]
        return out

    # ------------------------------------------------------------------
    def _accumulate(self, phase: str, seconds_by_rank: dict[int, float]) -> None:
        acc = self.rank_phase_seconds[phase]
        for rank, dt in seconds_by_rank.items():
            acc[rank] = acc.get(rank, 0.0) + dt

    def _run_traced(self, tel, phase_path: str, exec_phase: str):
        """Run one executor phase under a driver phase/span.

        With tracing on, the driver's open span id travels to the
        workers (through the Pipe for the processes backend) and their
        returned span intervals are merged into the driver's timeline as
        child spans — one track per rank, all on the shared monotonic
        clock.  Fused-step intervals carry their sub-phase name as a 5th
        element so the timeline keeps per-phase resolution.
        """
        tracer = tel.tracer
        with tel.phase(phase_path):
            res = self.executor.run_phase(
                exec_phase, None if tracer is None else tracer.current_id
            )
        if tracer is not None:
            for span in res.spans:
                if len(span) == 5:
                    rank, parent, t0, t1, name = span
                else:
                    rank, parent, t0, t1 = span
                    name = exec_phase
                tracer.add(name, t0, t1, parent_id=parent,
                           rank=rank, category="worker")
        return res

    def _record_comm(self, tel, res) -> None:
        self.halo.record(res.transfers)
        self.last_step_bytes = res.bytes_sent
        self.last_step_messages = res.messages
        self.last_step_slabs = res.slabs
        tel.inc("comm.bytes_sent", res.bytes_sent)
        tel.inc("comm.messages", res.messages)
        tel.inc("comm.slabs", res.slabs)

    def _step_fused(self, tel) -> None:
        """One fused step: a single executor round-trip, one barrier."""
        res = self._run_traced(tel, "dist/step", "step")
        self._record_comm(tel, res)
        for name, seconds in res.phase_seconds.items():
            self._accumulate(name, seconds)
            if tel.enabled:
                tel.record_rank_seconds(f"dist/{name}", seconds)
        busy = sum(res.seconds_by_rank.values())
        wait = sum(res.wait_seconds)
        eff = 1.0 - wait / (busy + wait) if busy + wait > 0.0 else 1.0
        self.last_overlap_efficiency = eff
        tel.gauge("dist.overlap_efficiency").set(eff)

    def _step_barriered(self, tel) -> None:
        """One barriered step: three executor round-trips."""
        if self.halo_mode == "recompute":
            # Pre-exchange f, then collide interior + ghost rim: the
            # rim's post-collision values are recomputed locally
            # instead of communicated (pointwise collide makes them
            # bit-identical to the neighbor's own results).
            res_halo = self._run_traced(tel, "dist/halo", "halo_f")
            res_collide = self._run_traced(tel, "dist/collide", "collide")
        else:
            res_collide = self._run_traced(tel, "dist/collide", "collide")
            res_halo = self._run_traced(tel, "dist/halo", "halo_post")
        res_stream = self._run_traced(tel, "dist/stream", "stream")

        self._record_comm(tel, res_halo)
        self._accumulate("collide", res_collide.seconds_by_rank)
        self._accumulate("halo", res_halo.seconds_by_rank)
        self._accumulate("stream", res_stream.seconds_by_rank)
        if tel.enabled:
            tel.record_rank_seconds(
                "dist/collide", res_collide.seconds_by_rank
            )
            tel.record_rank_seconds("dist/halo", res_halo.seconds_by_rank)
            tel.record_rank_seconds(
                "dist/stream", res_stream.seconds_by_rank
            )

    def step(self, n: int = 1) -> None:
        """Advance the lattice by ``n`` time steps."""
        tel = get_telemetry()
        for _ in range(n):
            if self.overlap:
                self._step_fused(tel)
            else:
                self._step_barriered(tel)
            self.step_count += 1

    # ------------------------------------------------------------------
    def bytes_per_step(self) -> float:
        """Average bytes shipped per step since the last counter reset."""
        steps = self.step_count - self._steps_at_reset
        if steps == 0:
            return 0.0
        return self.halo.counters.bytes_sent / steps

    def rebalance_hint(self) -> list:
        """Per-axis split weights from the measured per-rank seconds.

        Sums :attr:`rank_phase_seconds` across phases and folds the
        totals into :meth:`BlockDecomposition.rebalance_hint` — feed the
        result to a fresh decomposition's ``weights`` to move planes
        toward the measured-slow ranks.
        """
        totals: dict[int, float] = {}
        for acc in self.rank_phase_seconds.values():
            for rank, seconds in acc.items():
                totals[rank] = totals.get(rank, 0.0) + seconds
        return self.decomp.rebalance_hint(totals)

    def reset_counters(self) -> None:
        """Zero comm counters and per-rank timers for a new bench phase.

        ``bytes_per_step`` then averages over the steps taken *after*
        this call, so one solver can be reused across phases without
        earlier traffic polluting later readings.
        """
        self.halo.reset()
        self._steps_at_reset = self.step_count
        self.last_step_bytes = 0
        self.last_step_messages = 0
        self.last_step_slabs = 0
        for acc in self.rank_phase_seconds.values():
            acc.clear()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and release shared memory."""
        self.executor.close()
        self.blocks.close()

    def __enter__(self) -> "DistributedLBMSolver":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
