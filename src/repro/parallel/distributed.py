"""Distributed LBM solver over the parallel rank runtime.

Each rank owns a block of the global lattice in a one-node-padded local
array; a step is three barrier-separated rank-parallel phases run by an
executor backend (``serial`` | ``threads`` | ``processes``; see
:mod:`repro.parallel.executor`).  Two halo modes realize the same step:

* ``exchange``  — collide, then ship post-collision halo layers from
  neighbors (the classic exchange the original virtual runtime did);
* ``recompute`` — pre-exchange the *pre-collision* ``f`` rim, then
  redundantly collide the one-node ghost rim locally (the paper's
  Section 2.4.4 recompute-instead-of-communicate trick: trade a sliver
  of duplicate flops for never shipping post-collision data).

For a fully periodic lattice every backend × halo-mode combination
reproduces the single-grid solver bit-for-bit (asserted in the test
suite), and the :class:`~repro.parallel.halo.HaloAccountant` counters
measure exactly the communication volume a real MPI run would ship —
the quantity the strong-scaling breakdown of Fig. 7 hinges on.
"""

from __future__ import annotations

import numpy as np

from ..lbm.lattice import D3Q19
from ..telemetry import get_telemetry
from .decomposition import BlockDecomposition
from .executor import RankBlocks, make_executor, resolve_backend
from .halo import HaloAccountant

#: Supported halo handling modes.
HALO_MODES = ("exchange", "recompute")


class DistributedLBMSolver:
    """Periodic LBM stepped as ``n_tasks`` cooperating ranks.

    Parameters
    ----------
    shape:
        Global lattice shape (fully periodic).
    tau:
        Uniform relaxation time.
    n_tasks:
        Number of ranks (subdomains).
    backend:
        ``"serial"``, ``"threads"`` or ``"processes"``; ``None`` reads
        ``REPRO_PARALLEL_BACKEND`` (default ``serial``).
    n_workers:
        Worker count for the pooled backends; ``None`` reads
        ``REPRO_PARALLEL_WORKERS`` (default: one per CPU), capped at
        ``n_tasks``.
    halo_mode:
        ``"exchange"`` (ship post-collision halos) or ``"recompute"``
        (pre-exchange ``f`` and redundantly collide the ghost rim).
    kernels:
        Kernels backend for the rank-local collide/stream
        (``"numpy"`` | ``"numba"``; ``None`` resolves via
        ``REPRO_KERNELS``, which also overrides an explicit argument).
    dtype:
        Compute dtype for the rank-local distribution blocks
        (``"float32"`` | ``"float64"``; ``None`` resolves via
        ``REPRO_DTYPE``, which also overrides an explicit argument —
        same policy as :class:`~repro.lbm.grid.Grid`).

    The processes backend holds OS resources (worker processes and
    shared-memory segments): call :meth:`close` when done, or use the
    solver as a context manager.  A GC finalizer cleans up as a safety
    net.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        tau: float,
        n_tasks: int,
        backend: str | None = None,
        n_workers: int | None = None,
        halo_mode: str = "exchange",
        kernels: str | None = None,
        dtype=None,
    ):
        self.shape = tuple(shape)
        self.tau = float(tau)
        if halo_mode not in HALO_MODES:
            raise ValueError(
                f"unknown halo_mode {halo_mode!r}; pick one of {HALO_MODES}"
            )
        self.halo_mode = halo_mode
        self.decomp = BlockDecomposition(shape, n_tasks)
        self.halo = HaloAccountant(self.decomp)
        self.backend, self.n_workers = resolve_backend(
            backend, n_workers, n_tasks
        )
        from ..kernels import resolve_dtype, resolve_kernels

        self.kernels = resolve_kernels(kernels)
        self.dtype = resolve_dtype(dtype)
        self.blocks = RankBlocks(
            self.decomp, shared=(self.backend == "processes"),
            dtype=self.dtype,
        )
        #: Per-rank padded local arrays (kept name-compatible with the
        #: original virtual runtime; shared-memory views under processes).
        self.locals = self.blocks.f
        self._scratch = self.blocks.post
        self.executor = make_executor(
            self.backend, self.blocks, self.tau, self.n_workers,
            kernels=self.kernels,
        )
        self.step_count = 0
        self._steps_at_reset = 0
        self.last_step_bytes = 0
        self.last_step_messages = 0
        #: Cumulative per-rank wall seconds by phase name.
        self.rank_phase_seconds: dict[str, dict[int, float]] = {
            "collide": {}, "halo": {}, "stream": {},
        }

    # ------------------------------------------------------------------
    def scatter(self, f_global: np.ndarray) -> None:
        """Distribute a global distribution array to the rank blocks."""
        if f_global.shape != (D3Q19.Q,) + self.shape:
            raise ValueError("global array shape mismatch")
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            arr[:, 1:-1, 1:-1, 1:-1] = f_global[
                :, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]
            ]

    def gather(self) -> np.ndarray:
        """Reassemble the global distribution array from all ranks."""
        out = np.empty((D3Q19.Q,) + self.shape, dtype=self.dtype)
        for rank, arr in enumerate(self.locals):
            b = self.decomp.block(rank)
            out[:, b.lo[0] : b.hi[0], b.lo[1] : b.hi[1], b.lo[2] : b.hi[2]] = arr[
                :, 1:-1, 1:-1, 1:-1
            ]
        return out

    # ------------------------------------------------------------------
    def _accumulate(self, phase: str, seconds_by_rank: dict[int, float]) -> None:
        acc = self.rank_phase_seconds[phase]
        for rank, dt in seconds_by_rank.items():
            acc[rank] = acc.get(rank, 0.0) + dt

    def _run_traced(self, tel, phase_path: str, exec_phase: str):
        """Run one executor phase under a driver phase/span.

        With tracing on, the driver's open span id travels to the
        workers (through the Pipe for the processes backend) and their
        returned ``(rank, parent, t0, t1)`` intervals are merged into
        the driver's timeline as child spans — one track per rank, all
        on the shared monotonic clock.
        """
        tracer = tel.tracer
        with tel.phase(phase_path):
            res = self.executor.run_phase(
                exec_phase, None if tracer is None else tracer.current_id
            )
        if tracer is not None:
            for rank, parent, t0, t1 in res.spans:
                tracer.add(exec_phase, t0, t1, parent_id=parent,
                           rank=rank, category="worker")
        return res

    def step(self, n: int = 1) -> None:
        """Advance the lattice by ``n`` time steps."""
        tel = get_telemetry()
        for _ in range(n):
            if self.halo_mode == "recompute":
                # Pre-exchange f, then collide interior + ghost rim: the
                # rim's post-collision values are recomputed locally
                # instead of communicated (pointwise collide makes them
                # bit-identical to the neighbor's own results).
                res_halo = self._run_traced(tel, "dist/halo", "halo_f")
                res_collide = self._run_traced(tel, "dist/collide", "collide")
            else:
                res_collide = self._run_traced(tel, "dist/collide", "collide")
                res_halo = self._run_traced(tel, "dist/halo", "halo_post")
            res_stream = self._run_traced(tel, "dist/stream", "stream")

            self.halo.record(res_halo.transfers)
            self.last_step_bytes = res_halo.bytes_sent
            self.last_step_messages = res_halo.messages
            tel.inc("comm.bytes_sent", res_halo.bytes_sent)
            tel.inc("comm.messages", res_halo.messages)
            self._accumulate("collide", res_collide.seconds_by_rank)
            self._accumulate("halo", res_halo.seconds_by_rank)
            self._accumulate("stream", res_stream.seconds_by_rank)
            if tel.enabled:
                tel.record_rank_seconds(
                    "dist/collide", res_collide.seconds_by_rank
                )
                tel.record_rank_seconds("dist/halo", res_halo.seconds_by_rank)
                tel.record_rank_seconds(
                    "dist/stream", res_stream.seconds_by_rank
                )
            self.step_count += 1

    # ------------------------------------------------------------------
    def bytes_per_step(self) -> float:
        """Average bytes shipped per step since the last counter reset."""
        steps = self.step_count - self._steps_at_reset
        if steps == 0:
            return 0.0
        return self.halo.counters.bytes_sent / steps

    def reset_counters(self) -> None:
        """Zero comm counters and per-rank timers for a new bench phase.

        ``bytes_per_step`` then averages over the steps taken *after*
        this call, so one solver can be reused across phases without
        earlier traffic polluting later readings.
        """
        self.halo.reset()
        self._steps_at_reset = self.step_count
        self.last_step_bytes = 0
        self.last_step_messages = 0
        for acc in self.rank_phase_seconds.values():
            acc.clear()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut down the worker pool and release shared memory."""
        self.executor.close()
        self.blocks.close()

    def __enter__(self) -> "DistributedLBMSolver":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False
