"""Structured trace spans and the Chrome-trace/Perfetto exporter.

A *span* is one wall-clock interval with identity: a span id, a parent
span id, the phase path it timed, and the rank (or worker ordinal) that
executed it.  Spans are the per-occurrence complement to the aggregated
:class:`~repro.telemetry.timers.PhaseStat` accounting — the summary says
*how much* time ``dist/collide`` took over a run; the trace says *when*
each call happened and on *which* worker, which is what load-imbalance
and barrier-stall questions actually need.

Cross-worker propagation: the parallel executors
(:mod:`repro.parallel.executor`, :mod:`repro.parallel.fsi`) ship the
driver's current span id to their workers through the existing
Pipe/shared-memory command protocol; workers stamp their intervals on
the same clock (``time.perf_counter`` is system-wide ``CLOCK_MONOTONIC``
on Linux, so child-process timestamps are directly comparable) and the
driver merges the returned intervals into one run timeline via
:meth:`SpanRecorder.add`.

Export is the Chrome trace-event JSON format (``"X"`` complete events),
loadable by ``chrome://tracing`` and https://ui.perfetto.dev — see
``docs/observability.md`` for the walkthrough.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path

#: ``pid`` used for driver-side (non-worker) spans in the exported trace.
DRIVER_PID = 0


@dataclass
class Span:
    """One completed wall-clock interval with trace identity."""

    span_id: int
    parent_id: int | None
    name: str
    t0: float  # start, seconds on the monotonic clock
    t1: float  # end, same clock
    rank: int | None = None  # worker/rank ordinal; None => driver
    category: str = ""
    args: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_dict(self) -> dict:
        d = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "t0": self.t0,
            "t1": self.t1,
            "rank": self.rank,
        }
        if self.category:
            d["category"] = self.category
        if self.args:
            d["args"] = dict(self.args)
        return d


class _SpanContext:
    """Context manager for one driver-side span (created per call)."""

    __slots__ = ("_rec", "_name", "_category", "_args", "span_id", "_t0")

    def __init__(self, rec: "SpanRecorder", name: str, category: str,
                 args: dict | None):
        self._rec = rec
        self._name = name
        self._category = category
        self._args = args
        self.span_id = 0

    def __enter__(self) -> "_SpanContext":
        rec = self._rec
        self.span_id = rec._next_id
        rec._next_id += 1
        rec._stack.append(self.span_id)
        self._t0 = rec._clock()
        return self

    def __exit__(self, *exc) -> bool:
        rec = self._rec
        t1 = rec._clock()
        rec._stack.pop()
        rec.spans.append(
            Span(
                span_id=self.span_id,
                parent_id=rec._stack[-1] if rec._stack else None,
                name=self._name,
                t0=self._t0,
                t1=t1,
                rank=None,
                category=self._category,
                args=self._args or {},
            )
        )
        return False


class SpanRecorder:
    """Collects one process's span timeline (plus merged worker spans).

    Span ids are unique within one recorder; worker-side intervals get
    their ids assigned at merge time (:meth:`add`), so the driver remains
    the single id authority and parent links never collide.
    """

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.spans: list[Span] = []
        self._next_id = 1
        self._stack: list[int] = []  # open driver-side span ids

    @property
    def current_id(self) -> int | None:
        """Id of the innermost open driver span (None outside any span)."""
        return self._stack[-1] if self._stack else None

    def span(self, name: str, category: str = "",
             args: dict | None = None) -> _SpanContext:
        """Context manager recording one driver-side span."""
        return _SpanContext(self, name, category, args)

    def add(
        self,
        name: str,
        t0: float,
        t1: float,
        parent_id: int | None = None,
        rank: int | None = None,
        category: str = "",
        **args,
    ) -> Span:
        """Merge one externally-timed interval (e.g. a worker's) in."""
        sp = Span(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            t0=t0,
            t1=t1,
            rank=rank,
            category=category,
            args=args,
        )
        self._next_id += 1
        self.spans.append(sp)
        return sp

    def as_dicts(self) -> list[dict]:
        return [sp.as_dict() for sp in self.spans]

    def __len__(self) -> int:
        return len(self.spans)


# ----------------------------------------------------------------------
# Chrome-trace / Perfetto export


def to_chrome_trace(spans: list[Span], meta: dict | None = None) -> dict:
    """Spans as a Chrome trace-event document (``"X"`` complete events).

    Driver spans land on ``pid 0`` / ``tid 0``; a worker span lands on
    ``pid = rank + 1`` so Perfetto draws one track per rank.  The span
    and parent ids ride along in ``args`` — time containment gives the
    visual nesting, the ids give the exact edges a test (or a query in
    Perfetto's SQL view) can assert on.
    """
    events = []
    t_base = min((sp.t0 for sp in spans), default=0.0)
    for sp in spans:
        args = {"span_id": sp.span_id}
        if sp.parent_id is not None:
            args["parent_id"] = sp.parent_id
        args.update(sp.args)
        pid = DRIVER_PID if sp.rank is None else sp.rank + 1
        events.append(
            {
                "name": sp.name,
                "cat": sp.category or "phase",
                "ph": "X",
                "ts": (sp.t0 - t_base) * 1e6,  # microseconds
                "dur": max(sp.t1 - sp.t0, 0.0) * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            }
        )
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": dict(meta or {}),
    }
    return doc


def write_chrome_trace(
    spans: list[Span], path: str | Path, meta: dict | None = None
) -> Path:
    """Atomically write the Chrome-trace JSON for ``spans``."""
    import os

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(to_chrome_trace(spans, meta), fh, indent=1)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def read_chrome_trace(path: str | Path) -> dict:
    """Load a trace document written by :func:`write_chrome_trace`."""
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)
