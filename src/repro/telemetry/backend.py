"""Telemetry backends and the process-local installation point.

:class:`Telemetry` is the live backend: phases, metrics and events all
feed it, and it can persist an ``events.jsonl`` stream plus an
aggregated ``summary.json``.  :class:`NullTelemetry` implements the same
surface as no-ops, so instrumented hot paths cost a dict lookup and an
empty context manager when telemetry is off — and nothing else.

Instrumented library code never takes a telemetry argument; it calls
:func:`get_telemetry` at use time.  Callers opt in either permanently
(:func:`set_telemetry`) or scoped (:func:`active`)::

    tel = Telemetry(out_dir="out/")
    with active(tel):
        sim.step(100)
    tel.write_summary()
"""

from __future__ import annotations

import contextlib
import time
from pathlib import Path

from .events import EventSink
from .metrics import NULL_COUNTER, NULL_GAUGE, Counter, Gauge, MetricRegistry
from .report import render_summary, summarize, write_summary
from .timers import NULL_PHASE, PhaseRecorder, _NullPhase, _PhaseContext
from .tracing import SpanRecorder, write_chrome_trace


class _TracedPhase:
    """Phase context that also records a span on the active tracer.

    The span is named by the *full* slash-joined phase path (computed at
    entry, when the recorder stack already holds the enclosing phases),
    so trace names match the summary's phase paths exactly.
    """

    __slots__ = ("_phase", "_span", "_tel", "_name")

    def __init__(self, tel: "Telemetry", name: str):
        self._tel = tel
        self._name = name
        self._phase = tel.recorder.phase(name)
        self._span = None

    def __enter__(self) -> "_TracedPhase":
        self._phase.__enter__()
        path = self._tel.recorder.current_path
        self._span = self._tel.tracer.span(path)
        self._span.__enter__()
        return self

    def __exit__(self, *exc) -> bool:
        self._span.__exit__(*exc)
        self._phase.__exit__(*exc)
        return False


class Telemetry:
    """Live instrumentation backend.

    Parameters
    ----------
    out_dir:
        Directory for ``events.jsonl`` and ``summary.json``.  ``None``
        keeps events in memory (``.events``) — useful for tests and for
        summary-only profiling.
    clock:
        Monotonic clock; injectable for deterministic tests.
    meta:
        Free-form key/values recorded in the summary's ``meta`` block
        (experiment name, configuration, ...).
    trace:
        Record per-occurrence :class:`~repro.telemetry.tracing.Span`
        timelines (including merged worker spans) in addition to the
        aggregated phase stats; export with :meth:`write_trace`.
    """

    enabled = True

    def __init__(
        self,
        out_dir: str | Path | None = None,
        clock=time.perf_counter,
        meta: dict | None = None,
        trace: bool = False,
    ):
        self.out_dir = Path(out_dir) if out_dir is not None else None
        self._clock = clock
        self._t_start = clock()
        self.recorder = PhaseRecorder(clock)
        self.metrics = MetricRegistry()
        self.tracer: SpanRecorder | None = (
            SpanRecorder(clock) if trace else None
        )
        self.meta = dict(meta or {})
        self.n_events = 0
        #: Cumulative per-rank wall seconds by phase path, fed by the
        #: parallel runtimes (``record_rank_seconds``); the summary's
        #: rank-balance rollup derives from this.
        self.rank_seconds: dict[str, dict[int, float]] = {}
        self._sink: EventSink | None = None
        self._memory_events: list[dict] = []
        if self.out_dir is not None:
            self._sink = EventSink(self.out_dir / "events.jsonl")

    # -- timing --------------------------------------------------------
    def phase(self, name: str) -> _PhaseContext | _TracedPhase:
        """Context manager timing a (possibly nested) named phase."""
        if self.tracer is not None:
            return _TracedPhase(self, name)
        return self.recorder.phase(name)

    def record_rank_seconds(
        self, phase: str, seconds_by_rank: dict[int, float]
    ) -> None:
        """Accumulate per-rank wall seconds for one barriered phase."""
        acc = self.rank_seconds.setdefault(phase, {})
        for rank, dt in seconds_by_rank.items():
            acc[rank] = acc.get(rank, 0.0) + dt

    def uptime(self) -> float:
        """Seconds on the monotonic clock since this backend was created."""
        return self._clock() - self._t_start

    # -- metrics -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def inc(self, name: str, n: int = 1) -> None:
        self.metrics.counter(name).inc(n)

    def sample(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    # -- events --------------------------------------------------------
    def event(self, type_: str, **fields) -> None:
        record = {"t": round(self.uptime(), 9), "type": type_, **fields}
        self.n_events += 1
        if self._sink is not None:
            self._sink.emit(record)
        else:
            self._memory_events.append(record)

    @property
    def events(self) -> list[dict]:
        """In-memory events (only populated when ``out_dir`` is None)."""
        return list(self._memory_events)

    # -- summary / lifecycle -------------------------------------------
    def summary(self) -> dict:
        return summarize(self)

    def write_summary(self, path: str | Path | None = None) -> Path:
        if path is None:
            if self.out_dir is None:
                raise ValueError("no out_dir configured; pass an explicit path")
            path = self.out_dir / "summary.json"
        return write_summary(self.summary(), path)

    def render_summary(self) -> str:
        return render_summary(self.summary())

    def write_trace(self, path: str | Path | None = None) -> Path:
        """Export the recorded spans as Chrome-trace/Perfetto JSON."""
        if self.tracer is None:
            raise ValueError("tracing is off; construct Telemetry(trace=True)")
        if path is None:
            if self.out_dir is None:
                raise ValueError("no out_dir configured; pass an explicit path")
            path = self.out_dir / "trace.json"
        return write_chrome_trace(self.tracer.spans, path, meta=self.meta)

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        if self._sink is not None:
            self._sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


class NullTelemetry:
    """No-op backend: identical surface, zero side effects, zero files."""

    enabled = False
    meta: dict = {}
    n_events = 0
    out_dir = None
    tracer = None
    rank_seconds: dict = {}

    def phase(self, name: str) -> _NullPhase:
        return NULL_PHASE

    def record_rank_seconds(self, phase: str, seconds_by_rank) -> None:
        pass

    def uptime(self) -> float:
        return 0.0

    def counter(self, name: str):
        return NULL_COUNTER

    def gauge(self, name: str):
        return NULL_GAUGE

    def inc(self, name: str, n: int = 1) -> None:
        pass

    def sample(self, name: str, value: float) -> None:
        pass

    def event(self, type_: str, **fields) -> None:
        pass

    @property
    def events(self) -> list[dict]:
        return []

    def summary(self) -> dict:
        return {}

    def write_summary(self, path=None) -> None:
        return None

    def write_trace(self, path=None) -> None:
        return None

    def render_summary(self) -> str:
        return "telemetry disabled"

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass

    def __enter__(self) -> "NullTelemetry":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL = NullTelemetry()
_current: Telemetry | NullTelemetry = NULL


def get_telemetry() -> Telemetry | NullTelemetry:
    """The currently installed backend (NullTelemetry by default)."""
    return _current


def set_telemetry(tel: Telemetry | NullTelemetry | None):
    """Install ``tel`` process-wide; ``None`` restores the null backend."""
    global _current
    _current = tel if tel is not None else NULL
    return _current


@contextlib.contextmanager
def active(tel: Telemetry | NullTelemetry):
    """Scoped installation: restores the previous backend on exit."""
    prev = get_telemetry()
    set_telemetry(tel)
    try:
        yield tel
    finally:
        set_telemetry(prev)
