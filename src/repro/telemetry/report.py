"""End-of-run summaries: aggregation, JSON artifact, console rendering.

A summary collects per-phase wall-time statistics (total / mean / max /
call count), phase *coverage* (what fraction of each parent phase its
instrumented children account for — the gap is untimed code), final
counter values, and final gauge samples.  ``write_summary`` produces the
machine-readable baseline artifact future performance PRs diff against;
``render_summary`` pretty-prints the same data as an indented tree.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from .timers import PATH_SEP


def phase_children(phases: dict[str, dict]) -> dict[str, list[str]]:
    """Map each phase path to its direct children (present in ``phases``)."""
    out: dict[str, list[str]] = {path: [] for path in phases}
    for path in phases:
        if PATH_SEP in path:
            parent = path.rsplit(PATH_SEP, 1)[0]
            if parent in out:
                out[parent].append(path)
    return out


def phase_coverage(phases: dict[str, dict]) -> dict[str, float]:
    """Fraction of each parent phase's wall time timed by its children.

    Only parents with at least one instrumented child appear.  A value
    near 1.0 means the breakdown accounts for essentially all of the
    parent's time; a low value flags untimed work inside that phase.
    """
    cov: dict[str, float] = {}
    for parent, children in phase_children(phases).items():
        if not children:
            continue
        total = phases[parent]["total_s"]
        child_sum = sum(phases[c]["total_s"] for c in children)
        cov[parent] = child_sum / total if total > 0 else 0.0
    return cov


def rank_balance(rank_seconds: dict[str, dict[int, float]]) -> dict:
    """Per-phase ``max/mean`` load-imbalance rollup from per-rank seconds.

    ``imbalance`` is the max-to-mean ratio of cumulative per-rank wall
    time inside one barriered phase: 1.0 is perfect balance, and the
    excess over 1.0 is the fraction of the phase the busiest rank spends
    while its siblings idle at the barrier — the quantity the paper's
    load-balance discussion (and Fig. 7's strong-scaling rolloff) turns
    on.
    """
    out: dict[str, dict] = {}
    for phase, per_rank in sorted(rank_seconds.items()):
        if not per_rank:
            continue
        vals = list(per_rank.values())
        mean = sum(vals) / len(vals)
        mx = max(vals)
        out[phase] = {
            "n_ranks": len(vals),
            "max_s": mx,
            "mean_s": mean,
            "imbalance": mx / mean if mean > 0 else 1.0,
        }
    return out


def summarize(telemetry) -> dict:
    """Build the aggregated summary dict for a live Telemetry backend."""
    phases = telemetry.recorder.as_dict()
    metrics = telemetry.metrics.as_dict()
    meta = {
        "wall_s": telemetry.uptime(),
        "n_events": telemetry.n_events,
        **telemetry.meta,
    }
    if telemetry.tracer is not None:
        meta["n_spans"] = len(telemetry.tracer)
    summary = {
        "meta": meta,
        "phases": phases,
        "phase_coverage": phase_coverage(phases),
        "counters": metrics["counters"],
        "gauges": metrics["gauges"],
    }
    if telemetry.rank_seconds:
        summary["rank_balance"] = rank_balance(telemetry.rank_seconds)
    return summary


def write_summary(summary: dict, path: str | Path) -> Path:
    """Atomically persist a summary: temp file + ``os.replace``.

    A job killed mid-write can therefore never leave a truncated
    ``summary.json`` behind — readers see either the previous complete
    artifact or the new one.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s"
    return f"{s * 1e3:7.2f}ms"


def render_summary(summary: dict) -> str:
    """Human-readable phase tree + metrics for the console."""
    lines: list[str] = []
    meta = summary.get("meta", {})
    lines.append(f"telemetry summary — wall {meta.get('wall_s', 0.0):.3f}s, "
                 f"{meta.get('n_events', 0)} events")
    phases = summary.get("phases", {})
    coverage = summary.get("phase_coverage", {})
    if phases:
        lines.append("")
        lines.append(f"  {'phase':<36} {'total':>10} {'count':>7} "
                     f"{'mean':>10} {'max':>10}  cover")
        for path in sorted(phases):
            st = phases[path]
            depth = path.count(PATH_SEP)
            name = "  " * depth + path.rsplit(PATH_SEP, 1)[-1]
            cov = coverage.get(path)
            cov_s = f"{cov * 100:4.0f}%" if cov is not None else "     "
            lines.append(
                f"  {name:<36} {_fmt_seconds(st['total_s']):>10} "
                f"{st['count']:>7d} {_fmt_seconds(st['mean_s']):>10} "
                f"{_fmt_seconds(st['max_s']):>10}  {cov_s}"
            )
    balance = summary.get("rank_balance", {})
    if balance:
        lines.append("")
        lines.append("  rank balance (max/mean per barriered phase):")
        lines.append(
            f"    {'phase':<34} {'ranks':>5} {'max':>10} {'mean':>10}  imbal"
        )
        for phase in sorted(balance):
            b = balance[phase]
            lines.append(
                f"    {phase:<34} {b['n_ranks']:>5d} "
                f"{_fmt_seconds(b['max_s']):>10} "
                f"{_fmt_seconds(b['mean_s']):>10}  {b['imbalance']:.2f}x"
            )
    counters = summary.get("counters", {})
    if counters:
        lines.append("")
        lines.append("  counters:")
        for name in sorted(counters):
            lines.append(f"    {name:<40} {counters[name]['value']}")
    gauges = summary.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("  gauges (final [min, max] over n samples):")
        for name in sorted(gauges):
            g = gauges[name]
            lines.append(
                f"    {name:<40} {g['value']:.6g} "
                f"[{g['min']:.6g}, {g['max']:.6g}] over {g['n_samples']}"
            )
    return "\n".join(lines)
