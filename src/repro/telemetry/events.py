"""Structured run events as append-only JSON Lines.

One event per line keeps the sink crash-tolerant (a truncated final line
loses one event, not the file) and streamable — a long cerebral campaign
can be watched with ``tail -f events.jsonl``.  NumPy scalars and small
arrays are serialized transparently.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np


def _jsonable(obj):
    """JSON fallback for the numpy types telemetry payloads carry."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return str(obj)


class EventSink:
    """Line-flushed JSONL writer; the file is created on the first event.

    Every event is written as one ``write`` call and flushed to the OS
    immediately, so a SIGKILLed job loses at most the event being
    serialized when the signal landed — never previously emitted lines —
    and ``tail -f`` followers see events as they happen.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    def emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, default=_jsonable) + "\n")
        self._fh.flush()

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: str | Path) -> list[dict]:
    """Load every event from a JSONL file (skipping blank lines).

    A malformed *final* line — the signature a writer was killed mid-write
    — is silently dropped, so ledgers and event streams from crashed jobs
    stay readable.  Corruption anywhere else still raises, since that
    indicates a real problem rather than an interrupted append.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh]
    lines = [(i, ln) for i, ln in enumerate(lines) if ln]
    out: list[dict] = []
    for pos, (lineno, line) in enumerate(lines):
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if pos == len(lines) - 1:
                break  # truncated trailing write from a killed process
            raise ValueError(
                f"{path}:{lineno + 1}: corrupt JSONL line in mid-file"
            ) from None
    return out
