"""Structured run events as append-only JSON Lines.

One event per line keeps the sink crash-tolerant (a truncated final line
loses one event, not the file) and streamable — a long cerebral campaign
can be watched with ``tail -f events.jsonl``.  NumPy scalars and small
arrays are serialized transparently.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np


def _jsonable(obj):
    """JSON fallback for the numpy types telemetry payloads carry."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return str(obj)


class EventSink:
    """Buffered JSONL writer; the file is created on the first event."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None

    def emit(self, record: dict) -> None:
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a", encoding="utf-8")
        self._fh.write(json.dumps(record, default=_jsonable) + "\n")

    def flush(self) -> None:
        if self._fh is not None:
            self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def read_events(path: str | Path) -> list[dict]:
    """Load every event from a JSONL file (skipping blank lines)."""
    out: list[dict] = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out
