"""Structured run events as append-only JSON Lines.

One event per line keeps the sink crash-tolerant (a truncated final line
loses one event, not the file) and streamable — a long cerebral campaign
can be watched with ``tail -f events.jsonl``.  NumPy scalars and small
arrays are serialized transparently.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path

import numpy as np


def _jsonable(obj):
    """JSON fallback for the numpy types telemetry payloads carry."""
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, np.generic):
        return obj.item()
    return str(obj)


def heal_truncated_tail(path: str | Path) -> None:
    """Drop a partial final line left by a killed writer.

    Appending after a torn line would otherwise weld two records into
    one corrupt *mid-file* line, which readers rightly refuse.  A file
    that doesn't exist, is empty, or ends in a newline is left alone.
    """
    path = Path(path)
    try:
        size = path.stat().st_size
    except OSError:
        return
    if size == 0:
        return
    with open(path, "rb+") as fh:
        fh.seek(-1, os.SEEK_END)
        if fh.read(1) == b"\n":
            return
        # walk back to the last newline and truncate after it
        data = path.read_bytes()
        cut = data.rfind(b"\n") + 1
        fh.truncate(cut)


class EventSink:
    """Line-flushed JSONL writer; the file is created on the first event.

    Every event is written as one ``write`` call and flushed to the OS
    immediately, so a SIGKILLed job loses at most the event being
    serialized when the signal landed — never previously emitted lines —
    and ``tail -f`` followers see events as they happen.

    Writes are thread-safe: serialization happens outside the lock, but
    open-on-first-event, the write and the flush hold it, so concurrent
    emitters (an inline campaign's sibling jobs, a snapshot thread next
    to the driver) can never interleave partial lines.  Opening heals a
    torn tail first — the same discipline the service ledger applies —
    so appending to a killed run's stream stays safe.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fh = None
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        line = json.dumps(record, default=_jsonable) + "\n"
        with self._lock:
            if self._fh is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                heal_truncated_tail(self.path)
                self._fh = open(self.path, "a", encoding="utf-8")
            self._fh.write(line)
            self._fh.flush()

    def flush(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None


def read_events(path: str | Path) -> list[dict]:
    """Load every event from a JSONL file (skipping blank lines).

    A malformed *final* line — the signature a writer was killed mid-write
    — is silently dropped, so ledgers and event streams from crashed jobs
    stay readable.  Corruption anywhere else still raises, since that
    indicates a real problem rather than an interrupted append.
    """
    with open(path, encoding="utf-8") as fh:
        lines = [ln.strip() for ln in fh]
    lines = [(i, ln) for i, ln in enumerate(lines) if ln]
    out: list[dict] = []
    for pos, (lineno, line) in enumerate(lines):
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if pos == len(lines) - 1:
                break  # truncated trailing write from a killed process
            raise ValueError(
                f"{path}:{lineno + 1}: corrupt JSONL line in mid-file"
            ) from None
    return out


def tail_events(
    path: str | Path, n: int = 50, max_bytes: int = 262144
) -> list[dict]:
    """Last ``n`` events of a JSONL stream, reading at most ``max_bytes``.

    Built for the live ``/events/tail`` endpoint: bounded I/O regardless
    of stream length, tolerant of both a torn final line (in-flight
    write) and a torn *first* line (the seek landed mid-record).
    """
    path = Path(path)
    try:
        size = path.stat().st_size
        with open(path, "rb") as fh:
            fh.seek(max(0, size - max_bytes))
            data = fh.read().decode("utf-8", errors="replace")
    except OSError:
        return []
    out: list[dict] = []
    for line in data.splitlines()[-n - 1:]:
        line = line.strip()
        if not line:
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn first/last line of the window
    return out[-n:]
