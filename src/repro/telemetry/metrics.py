"""Process-local metric registry: monotonic counters and sampled gauges.

Counters track churn (cells inserted/removed, window moves, pool
growths); gauges hold the latest sampled value of a diagnostic
(hematocrit, interface mismatch) plus its observed range.  Metrics are
created on first use and owned by one registry per telemetry backend —
there is no global mutable state beyond the installed backend itself.
"""

from __future__ import annotations

import math
import re

#: Valid Prometheus metric-name characters (anything else becomes "_").
_PROM_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_metric_name(name: str, prefix: str = "repro_") -> str:
    """Dotted/slashed metric name -> legal Prometheus metric name.

    ``cells.inserted`` becomes ``repro_cells_inserted``; any character
    outside ``[a-zA-Z0-9_:]`` maps to ``_``, and a leading digit (after
    the prefix is applied) gains a ``_`` guard.
    """
    out = prefix + _PROM_INVALID.sub("_", name)
    if out[0].isdigit():
        out = "_" + out
    return out


def prometheus_text(
    counters: dict[str, dict],
    gauges: dict[str, dict],
    prefix: str = "repro_",
) -> str:
    """Render counters/gauges in the Prometheus text exposition format.

    Input is the ``as_dict()`` shape (``{name: {"value": ...}}``), so the
    same renderer serves a live :class:`MetricRegistry` and a summary or
    snapshot JSON read back from disk.  Counters get the conventional
    ``_total`` suffix and ``# TYPE ... counter``; gauges additionally
    expose their observed ``_min``/``_max`` when sampled.  Output is
    sorted by exposed name, so the text is byte-stable for a given metric
    state; if two raw names sanitize to the same exposed name, the first
    (in sorted raw order) wins and the rest are dropped rather than
    emitting an invalid duplicate family.
    """
    lines: list[str] = []
    seen: set[str] = set()
    for name in sorted(counters):
        metric = sanitize_metric_name(name, prefix) + "_total"
        if metric in seen:
            continue
        seen.add(metric)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(counters[name]['value'])}")
    for name in sorted(gauges):
        metric = sanitize_metric_name(name, prefix)
        if metric in seen:
            continue
        seen.add(metric)
        g = gauges[name]
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(g['value'])}")
        if g.get("n_samples"):
            for bound in ("min", "max"):
                if bound in g:
                    lines.append(f"# TYPE {metric}_{bound} gauge")
                    lines.append(
                        f"{metric}_{bound} {_prom_value(g[bound])}"
                    )
    return "\n".join(lines) + "\n" if lines else ""


def _prom_value(v) -> str:
    """Prometheus sample formatting (inf/nan spellings included)."""
    v = float(v)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value

    # ``add`` reads better for batched increments (e.g. +n_filled cells).
    add = inc

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-sampled value with min/max/sample-count bookkeeping."""

    __slots__ = ("name", "value", "n_samples", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.n_samples = 0
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> float:
        value = float(value)
        self.value = value
        self.n_samples += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        return value

    def as_dict(self) -> dict:
        return {
            "value": self.value,
            "n_samples": self.n_samples,
            "min": self.min if self.n_samples else 0.0,
            "max": self.max if self.n_samples else 0.0,
        }


class MetricRegistry:
    """Create-on-first-use store of named counters and gauges."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def as_dict(self) -> dict:
        return {
            "counters": {k: c.as_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.as_dict() for k, g in sorted(self._gauges.items())},
        }


class _NullCounter:
    """No-op counter shared by the disabled backend."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: int = 1) -> int:
        return 0

    add = inc


class _NullGauge:
    """No-op gauge shared by the disabled backend."""

    __slots__ = ()
    name = ""
    value = 0.0
    n_samples = 0

    def set(self, value: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
