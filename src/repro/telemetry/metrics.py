"""Process-local metric registry: monotonic counters and sampled gauges.

Counters track churn (cells inserted/removed, window moves, pool
growths); gauges hold the latest sampled value of a diagnostic
(hematocrit, interface mismatch) plus its observed range.  Metrics are
created on first use and owned by one registry per telemetry backend —
there is no global mutable state beyond the installed backend itself.
"""

from __future__ import annotations

import math


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> int:
        self.value += n
        return self.value

    # ``add`` reads better for batched increments (e.g. +n_filled cells).
    add = inc

    def as_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """Last-sampled value with min/max/sample-count bookkeeping."""

    __slots__ = ("name", "value", "n_samples", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.n_samples = 0
        self.min = math.inf
        self.max = -math.inf

    def set(self, value: float) -> float:
        value = float(value)
        self.value = value
        self.n_samples += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        return value

    def as_dict(self) -> dict:
        return {
            "value": self.value,
            "n_samples": self.n_samples,
            "min": self.min if self.n_samples else 0.0,
            "max": self.max if self.n_samples else 0.0,
        }


class MetricRegistry:
    """Create-on-first-use store of named counters and gauges."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    def as_dict(self) -> dict:
        return {
            "counters": {k: c.as_dict() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.as_dict() for k, g in sorted(self._gauges.items())},
        }


class _NullCounter:
    """No-op counter shared by the disabled backend."""

    __slots__ = ()
    name = ""
    value = 0

    def inc(self, n: int = 1) -> int:
        return 0

    add = inc


class _NullGauge:
    """No-op gauge shared by the disabled backend."""

    __slots__ = ()
    name = ""
    value = 0.0
    n_samples = 0

    def set(self, value: float) -> float:
        return 0.0


NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
