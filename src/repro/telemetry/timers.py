"""Monotonic phase timing: nested phase contexts and stopwatch timers.

All timing uses ``time.perf_counter`` (a monotonic, high-resolution
clock) by default; every class takes an injectable ``clock`` callable so
tests can drive the accounting deterministically.

Phases nest: entering ``phase("fine")`` inside ``phase("step")`` records
wall time under the path ``"step/fine"``.  Each unique path accumulates
one :class:`PhaseStat` (count / total / min / max), so an end-of-run
summary can report both where time went and how it was distributed over
calls — the per-phase breakdown the paper's Summit runs rely on to
attribute cost to IBM spreading, halo recompute, and cell management.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

PATH_SEP = "/"


@dataclass
class PhaseStat:
    """Accumulated wall-time statistics for one phase path."""

    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0

    def update(self, dt: float) -> None:
        self.count += 1
        self.total += dt
        if dt < self.min:
            self.min = dt
        if dt > self.max:
            self.max = dt

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total,
            "mean_s": self.mean,
            "min_s": self.min if self.count else 0.0,
            "max_s": self.max,
        }


class Timer:
    """Start/stop stopwatch on the monotonic clock.

    Usable as a context manager; ``elapsed`` accumulates across multiple
    start/stop cycles (handy for benchmark loops)::

        t = Timer()
        with t:
            expensive()
        print(t.elapsed)
    """

    __slots__ = ("_clock", "_t0", "elapsed")

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._t0: float | None = None
        self.elapsed = 0.0

    @property
    def running(self) -> bool:
        return self._t0 is not None

    def start(self) -> "Timer":
        if self._t0 is not None:
            raise RuntimeError("timer already running")
        self._t0 = self._clock()
        return self

    def stop(self) -> float:
        if self._t0 is None:
            raise RuntimeError("timer not running")
        self.elapsed += self._clock() - self._t0
        self._t0 = None
        return self.elapsed

    def reset(self) -> None:
        self._t0 = None
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


class _PhaseContext:
    """One entry into a named phase (created per ``phase()`` call)."""

    __slots__ = ("_recorder", "_name", "_t0")

    def __init__(self, recorder: "PhaseRecorder", name: str):
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        rec = self._recorder
        rec._stack.append(self._name)
        self._t0 = rec._clock()
        return self

    def __exit__(self, *exc) -> bool:
        rec = self._recorder
        dt = rec._clock() - self._t0
        path = PATH_SEP.join(rec._stack)
        stat = rec.stats.get(path)
        if stat is None:
            stat = rec.stats[path] = PhaseStat()
        stat.update(dt)
        rec._stack.pop()
        return False


class _NullPhase:
    """Shared no-op phase context for the disabled-telemetry path."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc) -> bool:
        return False


NULL_PHASE = _NullPhase()


@dataclass
class PhaseRecorder:
    """Process-local nested-phase accounting.

    ``stats`` maps slash-joined phase paths (``"step/fine/spread"``) to
    :class:`PhaseStat`; the current nesting lives in ``_stack``.
    """

    _clock: object = time.perf_counter
    stats: dict[str, PhaseStat] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list)

    def phase(self, name: str) -> _PhaseContext:
        return _PhaseContext(self, name)

    @property
    def current_path(self) -> str:
        return PATH_SEP.join(self._stack)

    def as_dict(self) -> dict[str, dict]:
        return {path: stat.as_dict() for path, stat in sorted(self.stats.items())}
