"""Telemetry: phase timers, counters/gauges, and structured run events.

The instrumentation layer behind APR campaign observability:

* :class:`Timer` / ``phase()`` — monotonic-clock wall-time accounting
  with nested-phase support (``"step/fine/spread"`` paths);
* :class:`Counter` / :class:`Gauge` — process-local metrics (cell
  churn, window moves, diagnostic samples);
* ``events.jsonl`` — append-only structured event stream per run;
* ``summary.json`` — end-of-run aggregate (per-phase total/mean/max,
  call counts, phase coverage, metric finals);
* :class:`NullTelemetry` — the default no-op backend, so instrumented
  hot paths are free when telemetry is off.

Usage::

    from repro.telemetry import Telemetry, active

    tel = Telemetry(out_dir="out/")
    with active(tel):
        sim.step(100)          # library code records phases/metrics
    tel.write_summary()
    print(tel.render_summary())

See ``docs/observability.md`` for the event schema and how to read a
run summary.
"""

from .backend import (
    NULL,
    NullTelemetry,
    Telemetry,
    active,
    get_telemetry,
    set_telemetry,
)
from .events import EventSink, heal_truncated_tail, read_events, tail_events
from .metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    prometheus_text,
    sanitize_metric_name,
)
from .report import (
    phase_coverage,
    rank_balance,
    render_summary,
    summarize,
    write_summary,
)
from .server import (
    ServeHandle,
    StatusSnapshotter,
    TelemetryServer,
    build_status,
    metrics_text,
    read_endpoint_file,
    serve_status,
    write_endpoint_file,
)
from .timers import PhaseRecorder, PhaseStat, Timer
from .tracing import (
    Span,
    SpanRecorder,
    read_chrome_trace,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "active",
    "get_telemetry",
    "set_telemetry",
    "EventSink",
    "heal_truncated_tail",
    "read_events",
    "tail_events",
    "Counter",
    "Gauge",
    "MetricRegistry",
    "prometheus_text",
    "sanitize_metric_name",
    "phase_coverage",
    "rank_balance",
    "render_summary",
    "summarize",
    "write_summary",
    "ServeHandle",
    "StatusSnapshotter",
    "TelemetryServer",
    "build_status",
    "metrics_text",
    "read_endpoint_file",
    "serve_status",
    "write_endpoint_file",
    "PhaseRecorder",
    "PhaseStat",
    "Timer",
    "Span",
    "SpanRecorder",
    "read_chrome_trace",
    "to_chrome_trace",
    "write_chrome_trace",
]
