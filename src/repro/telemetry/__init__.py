"""Telemetry: phase timers, counters/gauges, and structured run events.

The instrumentation layer behind APR campaign observability:

* :class:`Timer` / ``phase()`` — monotonic-clock wall-time accounting
  with nested-phase support (``"step/fine/spread"`` paths);
* :class:`Counter` / :class:`Gauge` — process-local metrics (cell
  churn, window moves, diagnostic samples);
* ``events.jsonl`` — append-only structured event stream per run;
* ``summary.json`` — end-of-run aggregate (per-phase total/mean/max,
  call counts, phase coverage, metric finals);
* :class:`NullTelemetry` — the default no-op backend, so instrumented
  hot paths are free when telemetry is off.

Usage::

    from repro.telemetry import Telemetry, active

    tel = Telemetry(out_dir="out/")
    with active(tel):
        sim.step(100)          # library code records phases/metrics
    tel.write_summary()
    print(tel.render_summary())

See ``docs/observability.md`` for the event schema and how to read a
run summary.
"""

from .backend import (
    NULL,
    NullTelemetry,
    Telemetry,
    active,
    get_telemetry,
    set_telemetry,
)
from .events import EventSink, read_events
from .metrics import Counter, Gauge, MetricRegistry
from .report import phase_coverage, render_summary, summarize, write_summary
from .timers import PhaseRecorder, PhaseStat, Timer

__all__ = [
    "NULL",
    "NullTelemetry",
    "Telemetry",
    "active",
    "get_telemetry",
    "set_telemetry",
    "EventSink",
    "read_events",
    "Counter",
    "Gauge",
    "MetricRegistry",
    "phase_coverage",
    "render_summary",
    "summarize",
    "write_summary",
    "PhaseRecorder",
    "PhaseStat",
    "Timer",
]
