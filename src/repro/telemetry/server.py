"""Live observability plane: atomic status snapshots + HTTP endpoint.

Long APR campaigns need to be watchable *while they run*, without the
simulation hot path ever blocking on a socket.  The design splits the
two concerns:

* a :class:`StatusSnapshotter` thread periodically folds the live state
  (a telemetry summary, a campaign rollup, ...) into one JSON document
  and writes it atomically (temp + ``os.replace``) to a snapshot file;
* a :class:`TelemetryServer` — zero-dependency stdlib
  :mod:`http.server` — serves that *file*:

  - ``GET /status``       the snapshot JSON verbatim;
  - ``GET /metrics``      Prometheus text exposition of the snapshot's
    counters/gauges plus derived series (step rate, per-phase rank
    imbalance, halo-bytes rate);
  - ``GET /events/tail``  last N events of the run's JSONL stream
    (``?n=100`` to change the window).

The simulation thread never talks to the server; the snapshot thread
reads in-memory telemetry state (cheap, GIL-consistent) on its own
cadence, and HTTP requests only ever touch complete snapshot files.  A
SIGKILL at any byte leaves either the previous snapshot or the new one.

Discovery: :func:`write_endpoint_file` drops a small ``server.json``
next to the run's artifacts so ``repro campaign status`` (and humans)
can find the live endpoint; it is removed on clean shutdown.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from .events import tail_events
from .metrics import prometheus_text, sanitize_metric_name
from .report import write_summary as _atomic_write_json

#: Discovery file dropped next to a served run's artifacts.
ENDPOINT_FILENAME = "server.json"

#: Default snapshot cadence (seconds); fast enough to feel live, slow
#: enough to be invisible next to a single coarse step.
DEFAULT_INTERVAL_S = 1.0


# ----------------------------------------------------------------------
# Status payload construction


def build_status(telemetry, extra: dict | None = None) -> dict:
    """Fold a live Telemetry backend into one ``/status`` payload.

    Reads only in-memory state (phase stats, metrics, the recorder's
    current stack), so it is safe to call from a sidecar thread while
    the simulation steps.  ``step_rate_per_s`` derives from the ``step``
    phase count when present, else from a ``steps`` counter.
    """
    summary = telemetry.summary()
    uptime = telemetry.uptime()
    phases = summary.get("phases", {})
    steps = None
    if "step" in phases:
        steps = int(phases["step"]["count"])
    elif "steps" in summary.get("counters", {}):
        steps = int(summary["counters"]["steps"]["value"])
    status = {
        "state": "running",
        "uptime_s": uptime,
        "current_phase": telemetry.recorder.current_path,
        "steps_done": steps,
        "step_rate_per_s": (
            steps / uptime if steps is not None and uptime > 0 else None
        ),
        "summary": summary,
    }
    if extra:
        status.update(extra)
    return status


def derived_metrics_text(status: dict) -> str:
    """Prometheus lines for series *derived* from a status snapshot.

    Covers what raw counters/gauges can't express directly: the step
    rate, the per-phase ``max/mean`` rank imbalance (labelled by phase
    path), and the halo-communication byte/message rates.
    """
    lines: list[str] = []
    rate = status.get("step_rate_per_s")
    if rate is not None:
        lines.append("# TYPE repro_step_rate_per_s gauge")
        lines.append(f"repro_step_rate_per_s {rate}")
    uptime = status.get("uptime_s") or 0.0
    summary = status.get("summary", {})
    counters = summary.get("counters", {})
    if uptime > 0:
        for raw, metric in (
            ("comm.bytes_sent", "repro_halo_bytes_per_s"),
            ("comm.messages", "repro_halo_messages_per_s"),
            ("comm.slabs", "repro_halo_slabs_per_s"),
        ):
            if raw in counters:
                lines.append(f"# TYPE {metric} gauge")
                lines.append(
                    f"{metric} {counters[raw]['value'] / uptime}"
                )
    balance = summary.get("rank_balance", {})
    if balance:
        lines.append("# TYPE repro_phase_rank_imbalance gauge")
        for phase in sorted(balance):
            lines.append(
                'repro_phase_rank_imbalance{phase="%s"} %s'
                % (phase, balance[phase]["imbalance"])
            )
        lines.append("# TYPE repro_phase_rank_max_seconds gauge")
        for phase in sorted(balance):
            lines.append(
                'repro_phase_rank_max_seconds{phase="%s"} %s'
                % (phase, balance[phase]["max_s"])
            )
    for key in ("jobs", "completed", "failed", "running", "pending"):
        if key in status.get("campaign", {}):
            metric = sanitize_metric_name(f"campaign.jobs_{key}")
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {status['campaign'][key]}")
    return "\n".join(lines) + "\n" if lines else ""


def metrics_text(status: dict) -> str:
    """Full ``/metrics`` body for one status snapshot."""
    summary = status.get("summary", {})
    return prometheus_text(
        summary.get("counters", {}), summary.get("gauges", {})
    ) + derived_metrics_text(status)


# ----------------------------------------------------------------------
# The snapshot sidecar


class StatusSnapshotter:
    """Daemon thread writing atomic periodic status snapshots.

    ``provider`` is called on the sidecar thread every ``interval``
    seconds; its dict lands in ``path`` via temp-file + ``os.replace``.
    Provider exceptions skip that cycle rather than killing the thread
    (the simulation matters more than one stale snapshot).
    """

    def __init__(
        self,
        provider,
        path: str | Path,
        interval: float = DEFAULT_INTERVAL_S,
    ):
        self.provider = provider
        self.path = Path(path)
        self.interval = float(interval)
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-status-snapshot", daemon=True
        )

    def write_once(self) -> bool:
        """One provider call + atomic write; False if the provider threw."""
        try:
            payload = self.provider()
        except Exception:
            return False
        _atomic_write_json(payload, self.path)
        return True

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.write_once()

    def start(self) -> "StatusSnapshotter":
        self.write_once()  # a snapshot exists before the server answers
        self._thread.start()
        return self

    def close(self) -> None:
        """Stop the loop and write one final (terminal) snapshot."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        self.write_once()


# ----------------------------------------------------------------------
# The HTTP endpoint


class _Handler(BaseHTTPRequestHandler):
    """Request handler bound to snapshot/events paths via class attrs."""

    snapshot_path: Path
    events_path: Path | None
    server_version = "repro-telemetry/1"

    def log_message(self, *args) -> None:  # silence per-request stderr
        pass

    def _send(self, code: int, body: bytes, content_type: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_json(self, code: int, obj) -> None:
        self._send(code, json.dumps(obj, indent=2).encode() + b"\n",
                   "application/json")

    def _load_snapshot(self) -> dict | None:
        try:
            with open(self.snapshot_path, encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlparse(self.path)
        route = url.path.rstrip("/") or "/"
        if route == "/":
            self._send_json(200, {
                "endpoints": ["/status", "/metrics", "/events/tail"],
            })
            return
        if route == "/status":
            snap = self._load_snapshot()
            if snap is None:
                self._send_json(503, {"error": "no status snapshot yet"})
                return
            self._send_json(200, snap)
            return
        if route == "/metrics":
            snap = self._load_snapshot()
            if snap is None:
                self._send(503, b"# no status snapshot yet\n",
                           "text/plain; charset=utf-8")
                return
            body = metrics_text(snap).encode()
            self._send(200, body,
                       "text/plain; version=0.0.4; charset=utf-8")
            return
        if route == "/events/tail":
            if self.events_path is None:
                self._send_json(404, {"error": "no event stream configured"})
                return
            try:
                n = int(parse_qs(url.query).get("n", ["50"])[0])
            except ValueError:
                n = 50
            self._send_json(200, tail_events(self.events_path,
                                             n=max(1, min(n, 1000))))
            return
        self._send_json(404, {"error": f"unknown route {route!r}"})


class TelemetryServer:
    """Threaded stdlib HTTP server over a snapshot file + event stream.

    ``port=0`` binds an ephemeral port (read it back from ``.port``).
    The server thread is a daemon and every request thread is too, so a
    crashing driver never hangs on observability machinery.
    """

    def __init__(
        self,
        snapshot_path: str | Path,
        events_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "snapshot_path": Path(snapshot_path),
                "events_path": (
                    Path(events_path) if events_path is not None else None
                ),
            },
        )
        self._httpd = ThreadingHTTPServer((host, int(port)), handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = int(self._httpd.server_address[1])
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-telemetry-http",
            daemon=True,
        )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "TelemetryServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Discovery + the one-call wiring used by drivers


def write_endpoint_file(dir_: str | Path, server: TelemetryServer,
                        **extra) -> Path:
    """Drop ``server.json`` so offline tools can find the live endpoint."""
    import os

    path = Path(dir_) / ENDPOINT_FILENAME
    _atomic_write_json(
        {"url": server.url, "host": server.host, "port": server.port,
         "pid": os.getpid(), **extra},
        path,
    )
    return path


def read_endpoint_file(dir_: str | Path) -> dict | None:
    """Parsed ``server.json`` if present and well-formed, else None."""
    path = Path(dir_) / ENDPOINT_FILENAME
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


class ServeHandle:
    """Snapshotter + server + discovery file, closed as one unit."""

    def __init__(self, snapshotter: StatusSnapshotter,
                 server: TelemetryServer, endpoint_file: Path | None):
        self.snapshotter = snapshotter
        self.server = server
        self.endpoint_file = endpoint_file

    @property
    def url(self) -> str:
        return self.server.url

    @property
    def port(self) -> int:
        return self.server.port

    def close(self) -> None:
        self.snapshotter.close()
        self.server.close()
        if self.endpoint_file is not None:
            self.endpoint_file.unlink(missing_ok=True)

    def __enter__(self) -> "ServeHandle":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


def serve_status(
    provider,
    out_dir: str | Path,
    port: int = 0,
    events_path: str | Path | None = None,
    interval: float = DEFAULT_INTERVAL_S,
    host: str = "127.0.0.1",
    **endpoint_extra,
) -> ServeHandle:
    """Start the full observability plane for one run directory.

    ``provider() -> dict`` supplies the status payload (see
    :func:`build_status` for the telemetry-backed one); the snapshot file
    lands at ``out_dir/status.json``, the discovery file at
    ``out_dir/server.json``.
    """
    out_dir = Path(out_dir)
    snapshotter = StatusSnapshotter(
        provider, out_dir / "status.json", interval=interval
    ).start()
    server = TelemetryServer(
        out_dir / "status.json", events_path=events_path,
        host=host, port=port,
    ).start()
    endpoint_file = write_endpoint_file(out_dir, server, **endpoint_extra)
    return ServeHandle(snapshotter, server, endpoint_file)
