#!/usr/bin/env python
"""CTC tracking through a bifurcating vasculature (Fig. 9, toy scale).

Builds a synthetic Murray's-law vascular tree (the stand-in for the
paper's patient-derived cerebral geometry), releases a CTC in the root
vessel surrounded by a cell-laden APR window, and tracks it as the window
moves with it through the vessel.  Finishes with the Fig. 9-style
projection: the node-hours needed to traverse the full vessel at the
measured rate, using the cost model calibrated to the paper's AWS node.

Runtime: ~5 minutes with defaults; --quick for a fast smoke run.
"""

import argparse
from pathlib import Path

import numpy as np

from repro.core import APRConfig, APRSimulation, WindowSpec
from repro.geometry import murray_tree
from repro.geometry.voxelize import solid_mask_from_sdf
from repro.io import TrajectoryWriter
from repro.lbm import BounceBackWalls, Grid, LBMSolver, OutflowOutlet, VelocityInlet
from repro.membrane import make_ctc
from repro.perfmodel import CostModel
from repro.perfmodel.machine import AWS_P3_16XL
from repro.units import UnitSystem

RHO = 1025.0
NU_BULK = 4e-3 / RHO
NU_PLASMA = 1.2e-3 / RHO


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--outdir", type=Path, default=Path("cerebral"))
    args = parser.parse_args()
    args.outdir.mkdir(exist_ok=True)
    steps = 40 if args.quick else 200

    # ------------------------------------------------------------------
    # Synthetic vessel tree (toy-scaled radii so the demo fits a laptop).
    # ------------------------------------------------------------------
    tree = murray_tree(
        generations=2,
        root_radius=16e-6,
        length_to_radius=7.0,
        branch_angle_deg=25.0,
        seed=args.seed,
        jitter=0.05,
    )
    lo, hi = tree.bounding_box(pad=6e-6)
    lo[2] = 2e-6  # slice the root capsule: the cut disk is the inlet
    print(f"tree: {tree.n_segments} vessels, "
          f"domain {(hi - lo) * 1e6} um")

    # ------------------------------------------------------------------
    # Coarse bulk lattice over the tree's bounding box.
    # ------------------------------------------------------------------
    dx_c = 3e-6
    tau_c = 1.0
    dt_c = (tau_c - 0.5) / 3.0 * dx_c**2 / NU_BULK
    units = UnitSystem(dx_c, dt_c, RHO)
    shape = tuple(int(np.ceil((hi[d] - lo[d]) / dx_c)) + 1 for d in range(3))
    grid = Grid(shape, tau=tau_c, origin=lo, spacing=dx_c)
    grid.solid = solid_mask_from_sdf(tree, shape, lo, dx_c)

    inlet_speed = 0.05  # m/s
    root_pos = tree.graph.nodes[tree.root()]["pos"]
    xs = grid.axis_coords(0)
    ys = grid.axis_coords(1)
    xg, yg = np.meshgrid(xs, ys, indexing="ij")
    r2 = (xg - root_pos[0]) ** 2 + (yg - root_pos[1]) ** 2
    prof = np.zeros((3,) + xg.shape)
    prof[2] = units.velocity_to_lattice(2 * inlet_speed) * np.clip(
        1.0 - r2 / (16e-6) ** 2, 0.0, None
    )
    coarse = LBMSolver(
        grid,
        [
            BounceBackWalls(grid.solid),
            VelocityInlet(axis=2, side="low", velocity=prof),
            OutflowOutlet(axis=2, side="high"),
        ],
    )

    # ------------------------------------------------------------------
    # APR window with RBCs around the CTC, released on the root axis.
    # ------------------------------------------------------------------
    ctc_diameter = 8e-6
    spec = WindowSpec(proper_side=18e-6, onramp_width=6e-6, insertion_width=6e-6)
    cfg = APRConfig(
        window_spec=spec,
        refinement=2,
        nu_bulk=NU_BULK,
        nu_window=NU_PLASMA,
        rho=RHO,
        hematocrit=0.15,
        rbc_diameter=5.5e-6,
        rbc_subdivisions=2,
        tile_side=14e-6,
        maintain_interval=10,
        seed=args.seed,
    )
    start = root_pos + np.array([0.0, 0.0, 40e-6])
    sim = APRSimulation(cfg, coarse, start, units, geometry=tree)
    ctc = make_ctc(start, global_id=sim.cells.allocate_id(),
                   diameter=ctc_diameter, subdivisions=2)
    sim.add_ctc(ctc)
    n_rbc = sim.fill_window()
    print(f"window Ht target {cfg.hematocrit:.2f}: seeded {n_rbc} RBCs")

    # ------------------------------------------------------------------
    # Track the CTC.
    # ------------------------------------------------------------------
    traj_path = args.outdir / "ctc_trajectory.csv"
    with TrajectoryWriter(traj_path) as writer:
        writer.record(0.0, ctc.centroid())
        for chunk in range(steps // 20):
            sim.step(20)
            writer.record(sim.time, ctc.centroid())
            print(
                f"t = {sim.time * 1e6:7.1f} us   z = {ctc.centroid()[2] * 1e6:6.2f} um  "
                f"cells = {sim.cells.n_cells:3d}   Ht = {sim.window_hematocrit():.3f}  "
                f"moves = {len(sim.move_reports)}"
            )
    print(f"wrote {traj_path}")

    # ------------------------------------------------------------------
    # Fig. 9 projection: node-hours for the full vessel at this rate.
    # ------------------------------------------------------------------
    advance = sim.tracker.total_distance()
    path_len = float(
        np.linalg.norm(np.diff(tree.centerline_path(), axis=0), axis=1).sum()
    )
    print(f"\nCTC advanced {advance * 1e6:.2f} um in {sim.time * 1e3:.3f} ms "
          f"of simulated time")
    cm = CostModel(machine=AWS_P3_16XL)
    # The paper's cerebral run advances 1.5 mm of CTC travel per node-day.
    nh = cm.traversal_node_hours(path_len)
    print(f"full root-to-terminal path is {path_len * 1e3:.2f} mm; at the "
          f"paper's 1.5 mm/day rate that costs ~{nh:.0f} node-hours "
          f"(Fig. 9's dashed-line projection: ~500 for ~31 mm)")


if __name__ == "__main__":
    main()
