#!/usr/bin/env python
"""CTC margination in an expanding channel: APR vs eFSI (Fig. 6).

Runs one APR replica and one fully-resolved eFSI replica of the
expanding-channel margination experiment at toy scale, compares the
radial-displacement-versus-z curves, and writes both trajectories to CSV
(the same artifact format as the paper's `ctctrajectory` folder).

Runtime: ~10-15 minutes with the default step counts; pass --quick for a
1-2 minute smoke version.
"""

import argparse
from pathlib import Path

import numpy as np

from repro.analytics import radial_displacement, trajectory_rms_difference
from repro.experiments.expanding_channel import (
    ChannelParams,
    run_expanding_channel_apr,
    run_expanding_channel_efsi,
)
from repro.io import TrajectoryWriter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="short smoke run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--outdir", type=Path, default=Path("ctctrajectory"))
    args = parser.parse_args()

    params = ChannelParams()
    efsi_steps = 300 if args.quick else 2000
    args.outdir.mkdir(exist_ok=True)

    print("running eFSI reference (RBCs everywhere)...")
    efsi = run_expanding_channel_efsi(seed=args.seed, params=params, steps=efsi_steps)
    print(f"  {efsi.n_rbcs} RBCs on {efsi.n_fluid_nodes} fluid nodes")

    print("running APR (RBCs only in the moving window)...")
    apr = run_expanding_channel_apr(
        seed=args.seed, params=params, steps=efsi_steps // params.refinement
    )
    print(
        f"  {apr.n_rbcs} RBCs, {apr.extras['window_moves']} window moves, "
        f"{apr.n_fluid_nodes} fluid nodes"
    )

    for result in (efsi, apr):
        path = args.outdir / f"trajectory_{result.method}_seed{args.seed}.csv"
        with TrajectoryWriter(path) as w:
            for t, pos in zip(result.times, result.trajectory):
                w.record(t, pos)
        print(f"  wrote {path}")

    # Fig. 6D-style comparison: radial displacement vs axial position.
    r_efsi = radial_displacement(efsi.trajectory)
    r_apr = radial_displacement(apr.trajectory)
    print("\nradial displacement vs z:")
    print("  eFSI: r {:.2f} -> {:.2f} um over z {:.1f} -> {:.1f} um".format(
        r_efsi[0] * 1e6, r_efsi[-1] * 1e6,
        efsi.trajectory[0, 2] * 1e6, efsi.trajectory[-1, 2] * 1e6))
    print("  APR : r {:.2f} -> {:.2f} um over z {:.1f} -> {:.1f} um".format(
        r_apr[0] * 1e6, r_apr[-1] * 1e6,
        apr.trajectory[0, 2] * 1e6, apr.trajectory[-1, 2] * 1e6))
    try:
        rms = trajectory_rms_difference(efsi.trajectory, apr.trajectory)
        print(f"  RMS radial difference over shared z-range: {rms * 1e6:.3f} um")
    except ValueError:
        print("  (trajectories do not overlap in z yet; run longer)")

    cell_ratio = efsi.n_rbcs / max(apr.n_rbcs, 1)
    print(f"\nAPR tracked the CTC with {cell_ratio:.1f}x fewer explicit RBCs "
          "(the paper's Summit runs: 4.5e5 vs 5.3e3, >10x node-hour saving)")


if __name__ == "__main__":
    main()
