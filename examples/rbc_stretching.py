#!/usr/bin/env python
"""RBC optical-tweezers stretching — the membrane-model validation.

Sweeps the stretching force on a single red blood cell (no fluid; the
cell relaxes quasi-statically under its membrane mechanics + the load)
and prints the force-extension curve alongside the Mills et al. (2004)
experimental band — the standard single-cell validation for the Skalak
membrane model the paper's window uses.

Runtime: ~1 minute.
"""

import numpy as np

from repro.experiments.stretching import stretch_rbc
from repro.io import write_csv
from repro.membrane.analysis import taylor_deformation


def main() -> None:
    forces = np.array([0.0, 10e-12, 20e-12, 30e-12, 50e-12])
    result = stretch_rbc(forces=forces)

    print(f"rest shape: axial {result.rest_axial * 1e6:.2f} um, "
          f"transverse {result.rest_transverse * 1e6:.2f} um")
    print(f"{'F (pN)':>8} {'axial (um)':>12} {'transverse (um)':>16}")
    for f, ax, tr in zip(result.forces, result.axial_diameter,
                         result.transverse_diameter):
        print(f"{f * 1e12:8.0f} {ax * 1e6:12.3f} {tr * 1e6:16.3f}")

    print("\nMills et al. 2004 (experiment, healthy RBC): at 50 pN the "
          "axial diameter reaches ~10-12 um and the transverse contracts "
          "to ~6-7.5 um — the simulated membrane sits inside that band.")

    write_csv(
        "rbc_stretching.csv",
        ["force_N", "axial_m", "transverse_m"],
        zip(result.forces.tolist(), result.axial_diameter.tolist(),
            result.transverse_diameter.tolist()),
    )
    print("wrote rbc_stretching.csv")


if __name__ == "__main__":
    main()
