#!/usr/bin/env python
"""Capability and scaling models: Tables 2-3, Figs. 7-8 (instant).

Prints the paper's hardware-bound results from the calibrated models:
memory footprints for the cerebral geometry (Table 3), simulable fluid
volumes on 256 Summit nodes (Table 2 / Fig. 1), strong and weak scaling
curves (Figs. 7-8), and the Section 3.3 node-hour comparison.
"""

from repro.perfmodel import (
    strong_scaling_curve,
    table2_fluid_volumes,
    table3_memory,
    weak_scaling_curve,
)
from repro.perfmodel.costmodel import fig9_projection, node_hour_ratio
from repro.perfmodel.memory import apr_total_memory, efsi_total_memory


def main() -> None:
    print("=== Table 2: fluid volume vs resources (256 Summit nodes) ===")
    t2 = table2_fluid_volumes()
    print(f"  APR window (0.5 um, {t2['gpu_count']} GPUs): "
          f"{t2['apr_window_volume'] * 1e6:.2e} mL   (paper 4.91e-03)")
    print(f"  APR bulk  (15 um, {t2['cpu_count']} CPUs): "
          f"{t2['apr_bulk_volume'] * 1e6:8.1f} mL   (paper 41.0)")
    print(f"  eFSI      (0.5 um, 256 nodes):  "
          f"{t2['efsi_volume'] * 1e6:.2e} mL   (paper 4.98e-03)")

    print("\n=== Table 3: cerebral geometry memory (APR vs eFSI) ===")
    t3 = table3_memory()
    for name, row in t3.items():
        print(f"  {name:11s} fluid {row['fluid_bytes'] / 1e9:12.1f} GB   "
              f"RBC {row['rbc_bytes'] / 1e9:12.2f} GB")
    print(f"  APR total:  {apr_total_memory(t3) / 1e9:.1f} GB (paper: <100 GB)")
    print(f"  eFSI total: {efsi_total_memory(t3) / 1e15:.2f} PB (paper: 9.2 PB)")

    print("\n=== Fig. 7: strong scaling (10.5 mm cube, 0.65 mm window) ===")
    for n, d in strong_scaling_curve().items():
        print(f"  {n:4d} nodes: speedup {d['speedup']:5.2f}  "
              f"(cpu {d['cpu'] * 1e3:7.1f} ms, comm {d['comm'] * 1e3:6.1f} ms)")
    print("  paper: ~6x from 32 to 512 nodes")

    print("\n=== Fig. 8: weak scaling (17e6 fluid points per node) ===")
    for n, d in weak_scaling_curve().items():
        print(f"  {n:4d} nodes: efficiency vs 8-node baseline "
              f"{d['efficiency_vs_baseline']:5.3f}")
    print("  paper: >=90% above 8 nodes; 1-4 nodes anomalously fast")

    print("\n=== Section 3.3 / Fig. 9: cost comparisons ===")
    print(f"  expanding channel, eFSI/APR node-hours: {node_hour_ratio():.1f}x "
          "(paper: 'over 10x')")
    proj = fig9_projection()
    print(f"  cerebral projection: {proj['vessel_length_mm']:.1f} mm at "
          f"{proj['mm_per_day']} mm/day = {proj['node_hours']:.0f} node-hours")


if __name__ == "__main__":
    main()
