#!/usr/bin/env python
"""Generate campaign manifests for `python -m repro campaign run`.

Two built-in shapes:

* default — a hematocrit x shear sweep (6 jobs, mixed experiments),
  the demo campaign from docs/campaign.md: checkpointed jobs, two at a
  time on the process backend, retries enabled.  Kill it mid-flight and
  `python -m repro campaign resume <out>` finishes the remainder from
  the checkpoint shards;
* ``--smoke`` — the 3-job CI manifest: tiny step budgets, 2-worker
  process backend, seconds of wall time.

The generator emits TOML (JSON with ``--json``) so the manifest stays a
reviewable artifact rather than an opaque pickle::

    python examples/campaign_sweep.py --out sweep.toml
    python -m repro campaign run sweep.toml --out out/sweep
    python -m repro campaign status out/sweep
"""

import argparse
import json
from pathlib import Path


def smoke_jobs() -> list[dict]:
    """Three tiny mixed-experiment jobs for CI."""
    return [
        {
            "id": "shear-smoke",
            "experiment": "shear_layers",
            "steps": 60,
            "checkpoint_every": 30,
            "params": {"lam": 0.5, "n": 2, "ny_channel": 9},
        },
        {
            "id": "tube-smoke",
            "experiment": "tube_window",
            "steps": 10,
            "params": {"hematocrit": 0.15},
        },
        {
            "id": "hotpath-smoke",
            "experiment": "hotpath",
            "steps": 5,
            "priority": 5,
            "params": {"shape": [10, 10, 10], "n_cells": 1, "warmup": 0},
        },
    ]


def sweep_jobs() -> list[dict]:
    """The 6-job demo campaign: mixed experiments, checkpointed."""
    jobs: list[dict] = []
    for ht in (0.10, 0.20):
        jobs.append(
            {
                "id": f"tube-ht{int(ht * 100):02d}",
                "experiment": "tube_window",
                "steps": 60,
                "checkpoint_every": 20,
                "params": {"hematocrit": ht},
            }
        )
    for lam in (0.25, 0.5):
        jobs.append(
            {
                "id": f"shear-lam{int(lam * 100):03d}",
                "experiment": "shear_layers",
                "steps": 600,
                "checkpoint_every": 200,
                "params": {"lam": lam, "n": 2, "ny_channel": 9},
            }
        )
    jobs.append(
        {
            "id": "channel-apr",
            "experiment": "expanding_channel",
            "steps": 60,
            "checkpoint_every": 20,
            "params": {"method": "apr"},
        }
    )
    jobs.append(
        {
            "id": "hotpath-probe",
            "experiment": "hotpath",
            "steps": 20,
            "checkpoint_every": 10,
            "priority": 5,  # cheap probe: admit it first
            "params": {"shape": [12, 12, 12], "n_cells": 2},
        }
    )
    return jobs


def build_doc(name: str, jobs: list[dict], max_parallel: int) -> dict:
    return {
        "name": name,
        "max_parallel": max_parallel,
        "retry_backoff_s": 0.5,
        "defaults": {
            "backend": "processes",
            "workers": 2,
            "max_attempts": 2,
        },
        "jobs": jobs,
    }


def _toml_value(v) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, (int, float)):
        return repr(v)
    if isinstance(v, list):
        return "[" + ", ".join(_toml_value(x) for x in v) + "]"
    return json.dumps(v)


def to_toml(doc: dict) -> str:
    """Render the manifest dict as TOML (flat layout the loader reads)."""
    lines = [f"name = {_toml_value(doc['name'])}"]
    for key in ("max_parallel", "retry_backoff_s"):
        if key in doc:
            lines.append(f"{key} = {_toml_value(doc[key])}")
    if doc.get("defaults"):
        lines.append("")
        lines.append("[defaults]")
        for k, v in doc["defaults"].items():
            lines.append(f"{k} = {_toml_value(v)}")
    for job in doc["jobs"]:
        lines.append("")
        lines.append("[[jobs]]")
        for k, v in job.items():
            if k == "params":
                continue
            lines.append(f"{k} = {_toml_value(v)}")
        if job.get("params"):
            lines.append("[jobs.params]")
            for k, v in job["params"].items():
                lines.append(f"{k} = {_toml_value(v)}")
    return "\n".join(lines) + "\n"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="emit the 3-job CI smoke manifest instead of the full sweep",
    )
    parser.add_argument(
        "--max-parallel", type=int, default=2,
        help="concurrent jobs the scheduler may run (default 2)",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit JSON instead of TOML"
    )
    parser.add_argument(
        "--out", type=Path, default=None,
        help="output file (default: print to stdout)",
    )
    args = parser.parse_args()

    if args.smoke:
        doc = build_doc("ci-smoke", smoke_jobs(), args.max_parallel)
    else:
        doc = build_doc("apr-sweep", sweep_jobs(), args.max_parallel)

    text = (
        json.dumps(doc, indent=2) + "\n" if args.json else to_toml(doc)
    )

    # validate eagerly so a generator bug never ships a broken manifest
    from repro.service.manifest import manifest_from_dict

    manifest_from_dict(doc)

    if args.out is None:
        print(text, end="")
    else:
        args.out.write_text(text)
        n = len(doc["jobs"])
        print(f"wrote {args.out} ({doc['name']}: {n} jobs, "
              f"max_parallel={doc['max_parallel']})")
        print(f"run it:    python -m repro campaign run {args.out} "
              f"--out out/{doc['name']}")
        print(f"watch it:  python -m repro campaign status out/{doc['name']}")


if __name__ == "__main__":
    main()
