#!/usr/bin/env python
"""Quickstart: a cell-laden APR window coupled to a bulk flow.

Builds the smallest meaningful APR setup — a periodic whole-blood box with
a body-force-driven flow, a finely-resolved plasma window at its center
populated with deformable RBCs at 12% hematocrit — runs a handful of
coupled steps, and reports what happened.

Runtime: ~1 minute on a laptop.
"""

import numpy as np

from repro import APRConfig, APRSimulation, UnitSystem, WindowSpec
from repro.lbm import Grid, LBMSolver

RHO = 1025.0  # blood density [kg/m^3]
NU_BULK = 4e-3 / RHO  # whole blood, 4 cP
NU_PLASMA = 1.2e-3 / RHO  # plasma, 1.2 cP


def main() -> None:
    # ------------------------------------------------------------------
    # Coarse bulk lattice: a periodic box of whole blood, driven by a
    # body force (the pressure-gradient equivalent).
    # ------------------------------------------------------------------
    dx_coarse = 2.5e-6  # 2.5 um coarse spacing
    tau_coarse = 1.0
    dt_coarse = (tau_coarse - 0.5) / 3.0 * dx_coarse**2 / NU_BULK
    units = UnitSystem(dx_coarse, dt_coarse, RHO)

    box_cells = 24
    grid = Grid((box_cells,) * 3, tau=tau_coarse, spacing=dx_coarse)
    force = 3.0e4  # N/m^3
    grid.force[0] = units.force_density_to_lattice(force)
    coarse = LBMSolver(grid, [])

    # ------------------------------------------------------------------
    # APR window: plasma + explicit RBCs, refinement ratio 2.
    # ------------------------------------------------------------------
    spec = WindowSpec(
        proper_side=15e-6, onramp_width=5e-6, insertion_width=5e-6
    )
    config = APRConfig(
        window_spec=spec,
        refinement=2,
        nu_bulk=NU_BULK,
        nu_window=NU_PLASMA,
        rho=RHO,
        hematocrit=0.12,
        rbc_diameter=5.5e-6,  # toy-scale cells for a fast demo
        rbc_subdivisions=2,
        tile_side=14e-6,
        maintain_interval=5,
        seed=0,
    )
    center = dx_coarse * (box_cells - 1) / 2.0 * np.ones(3)
    sim = APRSimulation(
        config,
        coarse,
        window_center=center,
        coarse_units=units,
        window_body_force=np.array([force, 0.0, 0.0]),
    )

    n_cells = sim.fill_window()
    print(f"window: {spec.total_side * 1e6:.0f} um cube, "
          f"fine spacing {sim.units_fine.dx * 1e9:.0f} nm")
    print(f"tau_coarse = {coarse.grid.tau:.3f}, tau_fine = {sim.tau_fine:.3f} "
          f"(Eq. 7 with lambda = {config.viscosity_contrast:.2f})")
    print(f"seeded {n_cells} RBCs, window Ht = {sim.window_hematocrit():.3f}")

    # ------------------------------------------------------------------
    # Run 30 coupled coarse steps (each runs 2 fine FSI sub-steps).
    # ------------------------------------------------------------------
    for chunk in range(3):
        sim.step(10)
        _, u = sim.fine.solver.macroscopic()
        u_phys = np.abs(u[0]).max() * units.dx / units.dt
        print(
            f"t = {sim.time * 1e6:7.2f} us   "
            f"cells = {sim.cells.n_cells:3d}   "
            f"Ht = {sim.window_hematocrit():.3f}   "
            f"max |u| = {u_phys * 1e3:.2f} mm/s"
        )

    ctrl = sim.controller
    print(f"controller inserted {ctrl.n_inserted} and removed "
          f"{ctrl.n_removed} cells to hold the target hematocrit")


if __name__ == "__main__":
    main()
