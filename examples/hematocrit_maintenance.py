#!/usr/bin/env python
"""Hematocrit maintenance and effective viscosity (Fig. 5).

Runs the tube-with-window experiment at one or more target hematocrits,
writes the Ht(t) series to CSV (Fig. 5B) and compares the measured
effective viscosity against the Pries correlation (Fig. 5C).

Runtime: a few minutes per hematocrit at the default toy scale.
"""

import argparse
from pathlib import Path

from repro.experiments.tube_window import run_tube_window
from repro.io import TimeSeriesWriter


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--hematocrits", type=float, nargs="+", default=[0.10, 0.20],
        help="target tube hematocrits (paper: 0.10 0.20 0.30)",
    )
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--outdir", type=Path, default=Path("hctvisctests"))
    args = parser.parse_args()
    args.outdir.mkdir(exist_ok=True)

    print(f"{'Ht target':>10} {'Ht final':>10} {'mu_eff (cP)':>12} "
          f"{'mu_Pries (cP)':>14} {'cells':>6} {'ins/rem':>8}")
    for ht in args.hematocrits:
        result = run_tube_window(hematocrit=ht, steps=args.steps)
        path = args.outdir / f"hematocrit_ht{int(ht * 100):02d}.csv"
        with TimeSeriesWriter(path, ["hematocrit"]) as w:
            for t, h in zip(result.times, result.hematocrit):
                w.record(t, hematocrit=h)
        print(
            f"{ht:10.2f} {result.hematocrit[-1]:10.3f} "
            f"{result.mu_effective * 1e3:12.3f} {result.mu_pries * 1e3:14.3f} "
            f"{result.n_cells_final:6d} "
            f"{result.n_inserted:4d}/{result.n_removed:<3d}"
        )
        print(f"           wrote {path}")


if __name__ == "__main__":
    main()
